"""The cluster's front door: one asyncio router over N worker processes.

The router speaks the *exact* wire protocol of a single
:class:`~repro.service.server.CountingService`, so an unmodified
:class:`~repro.service.client.ServiceClient` (and ``repro client``,
``repro top``, ``repro health``) works against it.  Behind the socket it
splits traffic three ways:

* **counting routes** (``/task``, ``/count``, ``/count-answers``,
  ``/wl-dim``, ``/analyze``) consistent-hash their canonical request
  digest onto one worker, with router-level **single-flight** (a
  stampede on one hot task leaves the router as a single worker
  request), bounded **retry** on worker death (connection failures
  resubmit to the next ring owner — a kill never surfaces as a client
  error, because every worker replicates the dataset plane), and one
  **hedge** request when the owner is slow;
* **mutating routes** (``/register-dataset``, ``/target-update``,
  ``/subscribe``) are serialised through the
  :class:`~repro.cluster.state.ClusterState` log and fanned out to every
  replica; the response is the primary's, and replica version agreement
  is asserted after each commit;
* **observability routes** are aggregated (``/healthz``, ``/health``,
  ``/readyz``, ``/stats`` grow per-worker verdicts and a ``cluster``
  block) or delegated to the first live worker (``/slo``, ``/alerts``,
  ``/traces``, ``/profile``, ``/slow-queries``, ``/datasets``,
  ``/subscriptions``); ``/metrics`` serves the router process's own
  registry (``repro_router_*`` families).

Health aggregation (the ``repro health`` contract): the router reports
*degraded* as soon as any worker is failing or unreachable, and *failing*
when a quorum (majority) of workers is lost.
"""

from __future__ import annotations

import asyncio
import json

from repro.obs import (
    family_snapshot,
    get_logger,
    log_event,
    registry as metrics_registry,
    span,
)
from repro.service.server import ServiceServer
from repro.cluster.ring import HashRing
from repro.cluster.state import REPLICATED_ROUTES, ClusterState
from repro.utils import stable_key_digest

import logging

__all__ = ["ClusterRouter", "RouterServer", "WorkerUnreachable"]

_log = get_logger("cluster.router")

#: Idempotent counting routes: hashed, single-flighted, retried, hedged.
HASHED_ROUTES = frozenset({
    "/task", "/count", "/count-answers", "/wl-dim", "/analyze",
})

#: Read-only routes answered by the first live worker.
DELEGATED_ROUTES = frozenset({
    "/datasets", "/subscriptions", "/slo", "/alerts", "/traces",
    "/profile", "/slow-queries",
})


class WorkerUnreachable(ConnectionError):
    """A worker connection failed outright (refused, reset, or EOF)."""

    def __init__(self, worker_id: str, reason: str) -> None:
        super().__init__(f"worker {worker_id} unreachable: {reason}")
        self.worker_id = worker_id


async def http_call(
    host: str,
    port: int,
    method: str,
    path: str,
    body: dict | None = None,
    timeout: float = 30.0,
    trace_id: str | None = None,
) -> tuple[int, dict | str]:
    """One HTTP/1.1 request over a fresh connection (the service answers
    ``Connection: close``).  Returns ``(status, decoded payload)``; any
    transport failure raises ``OSError``/``IncompleteReadError``."""

    async def call() -> tuple[int, dict | str]:
        reader, writer = await asyncio.open_connection(host, port)
        try:
            data = json.dumps(body).encode("utf-8") if body is not None else b""
            trace = f"X-Repro-Trace: {trace_id}\r\n" if trace_id else ""
            writer.write(
                (
                    f"{method} {path} HTTP/1.1\r\n"
                    f"Host: {host}:{port}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"{trace}"
                    "Connection: close\r\n\r\n"
                ).encode("ascii") + data,
            )
            await writer.drain()
            status_line = await reader.readline()
            parts = status_line.decode("ascii", "replace").split()
            if len(parts) < 2 or not parts[1].isdigit():
                raise ConnectionError(f"malformed status line {status_line!r}")
            status = int(parts[1])
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("ascii", "replace").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            raw = await reader.readexactly(length) if length else b""
            if headers.get("content-type", "").startswith("application/json"):
                return status, json.loads(raw) if raw else {}
            return status, raw.decode("utf-8", "replace")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    return await asyncio.wait_for(call(), timeout=timeout)


class ClusterRouter:
    """Route the service wire protocol across a set of worker endpoints.

    Workers join through :meth:`admit_worker` (which replays the
    replication log first, so a respawned process arrives at the
    committed dataset state before taking traffic) and leave through
    :meth:`demote_worker` — called on any transport failure, because on
    loopback a failed connection means the process died; the supervisor
    confirms, respawns, and re-admits.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        replicas: int = 64,
        request_timeout: float = 60.0,
        hedge_after: float = 1.0,
        on_suspect=None,
    ) -> None:
        self.host = host
        self.ring = HashRing(replicas=replicas)
        self.state = ClusterState()
        self.request_timeout = request_timeout
        self.hedge_after = hedge_after
        self.on_suspect = on_suspect
        #: worker id -> (host, port); only admitted (replayed) workers.
        self._workers: dict[str, tuple[str, int]] = {}
        self._membership = asyncio.Event()
        self._mutate_lock = asyncio.Lock()
        self._inflight: dict[str, asyncio.Future] = {}
        self.request_counts: dict[str, int] = {}
        registry = metrics_registry()
        self._requests_total = registry.counter(
            "repro_router_requests_total",
            "Requests handled by the cluster router, per route.",
            labelnames=("route",),
        )
        self._retries_total = registry.counter(
            "repro_router_retries_total",
            "Counting requests resubmitted after a worker became unreachable.",
        )
        self._hedges_total = registry.counter(
            "repro_router_hedges_total",
            "Hedge requests launched against a slow primary worker.",
        )
        self._coalesced_total = registry.counter(
            "repro_router_coalesced_total",
            "Counting requests served by joining an identical in-flight one.",
        )
        self._replays_total = registry.counter(
            "repro_router_replays_total",
            "Replication-log entries replayed into (re)admitted workers.",
        )
        metrics_registry().register_collector(self._collect_metrics)

    def close(self) -> None:
        metrics_registry().unregister_collector(self._collect_metrics)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    @property
    def worker_ids(self) -> list[str]:
        return sorted(self._workers)

    def endpoint(self, worker_id: str) -> tuple[str, int] | None:
        return self._workers.get(worker_id)

    async def admit_worker(
        self, worker_id: str, host: str, port: int, replay: bool = True,
    ) -> bool:
        """Replay the committed log into a worker, then put it in rotation.

        Admission runs under the mutation lock, so no fan-out can commit
        between the final replayed entry and ring membership — the worker
        joins at exactly the committed state.
        """
        async with self._mutate_lock:
            if replay:
                for entry in self.state.replay_entries():
                    try:
                        status, payload = await http_call(
                            host, port, "POST", entry.path, entry.body,
                            timeout=self.request_timeout,
                        )
                    except (OSError, asyncio.IncompleteReadError,
                            asyncio.TimeoutError, ValueError) as error:
                        log_event(
                            _log, logging.ERROR, "replay-failed",
                            worker=worker_id, path=entry.path,
                            sequence=entry.sequence, error=str(error),
                        )
                        return False
                    if status != 200:
                        log_event(
                            _log, logging.ERROR, "replay-rejected",
                            worker=worker_id, path=entry.path,
                            sequence=entry.sequence, status=status,
                            error=str(payload),
                        )
                        return False
                    self._replays_total.inc()
            self._workers[worker_id] = (host, port)
            self.ring.add(worker_id)
            self._membership.set()
            return True

    def demote_worker(self, worker_id: str, reason: str = "unreachable") -> None:
        """Drop a worker from rotation (idempotent).

        Any transport failure demotes: a worker that missed even one
        fan-out must not serve stale state, so re-entry always goes
        through a fresh process + :meth:`admit_worker` replay.
        """
        if worker_id not in self._workers:
            return
        del self._workers[worker_id]
        self.ring.remove(worker_id)
        if not self._workers:
            self._membership.clear()
        log_event(
            _log, logging.WARNING, "worker-demoted",
            worker=worker_id, reason=reason,
        )
        if self.on_suspect is not None:
            self.on_suspect(worker_id)

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def handle(
        self, method: str, path: str, body: dict,
        client_trace: str | None = None,
    ) -> tuple[int, dict | str, str | None]:
        """The transport entry point — signature-compatible with
        :meth:`CountingService.handle`, so :class:`RouterServer` reuses
        the existing HTTP parsing layer unchanged."""
        route = (method.upper(), path.rstrip("/") or "/")
        name = route[1]
        sp = span("router.request", route=name, method=route[0])
        with sp:
            sp.adopt_trace(client_trace)
            try:
                status, payload = await self._dispatch(route, body, sp.trace_id)
            except Exception as error:  # noqa: BLE001 - a 503, not a crash
                status = 503
                payload = {
                    "kind": "error",
                    "error": f"cluster error: {type(error).__name__}: {error}",
                    "code": "cluster-unavailable",
                }
            sp.annotate(status=status)
        self.request_counts[name] = self.request_counts.get(name, 0) + 1
        self._requests_total.labels(route=name).inc()
        if status >= 400 and isinstance(payload, dict) and sp.trace_id:
            payload = {**payload, "trace_id": sp.trace_id}
        return status, payload, sp.trace_id

    async def _dispatch(
        self, route: tuple[str, str], body: dict, trace_id: str | None,
    ) -> tuple[int, dict | str]:
        method, path = route
        if method == "POST" and path in HASHED_ROUTES:
            return await self._dispatch_hashed(path, body, trace_id)
        if method == "POST" and path in REPLICATED_ROUTES:
            return await self._dispatch_replicated(path, body, trace_id)
        if method == "GET" and path in ("/healthz", "/health"):
            return await self._aggregate_health(
                kind=path.lstrip("/"), liveness=path == "/healthz",
            )
        if method == "GET" and path == "/readyz":
            return await self._aggregate_readiness()
        if method == "GET" and path == "/stats":
            return await self._aggregate_stats()
        if method == "GET" and path == "/metrics":
            return self._own_metrics(body)
        if path in DELEGATED_ROUTES or (method, path) == ("POST", "/profile"):
            return await self._delegate(method, path, body, trace_id)
        return 404, {
            "kind": "error",
            "error": f"no route {method} {path}",
            "code": "unknown-route",
        }

    # ------------------------------------------------------------------
    # hashed counting routes
    # ------------------------------------------------------------------
    async def _dispatch_hashed(
        self, path: str, body: dict, trace_id: str | None,
    ) -> tuple[int, dict | str]:
        key = stable_key_digest((path, body))
        existing = self._inflight.get(key)
        if existing is not None:
            self._coalesced_total.inc()
            return await asyncio.shield(existing)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            result = await self._forward_with_retry(path, body, key, trace_id)
            future.set_result(result)
            return result
        except BaseException as error:
            # Waiters see the same failure; transport-level surprises
            # become a structured 503 in handle()'s catch-all.
            if not future.done():
                future.set_exception(error)
                future.exception()  # consumed: no un-retrieved warnings
            raise
        finally:
            self._inflight.pop(key, None)

    async def _forward_with_retry(
        self, path: str, body: dict, key: str, trace_id: str | None,
    ) -> tuple[int, dict | str]:
        """Forward to the key's ring owner; resubmit on worker death,
        hedge once the owner looks slow, wait out respawn windows.

        Counting routes are idempotent (same canonical task, same
        answer), so resubmitting after a SIGKILL — even one that landed
        mid-response — is always safe.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.request_timeout
        attempted: set[str] = set()
        pending: dict[asyncio.Task, str] = {}
        try:
            while True:
                # (Re)compute the preference list against current
                # membership: demotions and re-admissions between
                # attempts are picked up immediately.
                candidates: list[str] = []
                if self._workers:
                    candidates = [
                        wid for wid in self.ring.nodes_for(key)
                        if wid not in attempted
                    ]
                if candidates and len(pending) < 2:
                    worker_id = candidates[0]
                    attempted.add(worker_id)
                    if attempted - {worker_id}:
                        if pending:
                            self._hedges_total.inc()
                        else:
                            self._retries_total.inc()
                    endpoint = self._workers.get(worker_id)
                    if endpoint is None:
                        continue
                    task = asyncio.create_task(http_call(
                        endpoint[0], endpoint[1], "POST", path, body,
                        timeout=max(0.05, deadline - loop.time()),
                        trace_id=trace_id,
                    ))
                    pending[task] = worker_id
                if not pending:
                    # Nothing to try right now (ring empty mid-respawn, or
                    # every member already failed): wait for membership to
                    # change, then retry everyone afresh.
                    remaining = deadline - loop.time()
                    if remaining <= 0:
                        return 503, {
                            "kind": "error",
                            "error": "no cluster worker answered in time",
                            "code": "cluster-unavailable",
                        }
                    self._membership.clear()
                    try:
                        await asyncio.wait_for(
                            self._membership.wait(),
                            timeout=min(remaining, 0.25),
                        )
                    except asyncio.TimeoutError:
                        pass
                    attempted = set()
                    continue
                timeout: float | None = None
                more = [w for w in self.ring.nodes_for(key)
                        if w in self._workers and w not in attempted]
                if more and len(pending) < 2:
                    timeout = self.hedge_after
                done, _ = await asyncio.wait(
                    set(pending),
                    timeout=timeout,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                if not done:
                    continue  # hedge timer fired: loop launches a backup
                for task in done:
                    worker_id = pending.pop(task)
                    try:
                        status, payload = task.result()
                    except asyncio.TimeoutError:
                        # Slow, not dead (TimeoutError must precede its
                        # OSError parent): leave membership alone, let
                        # the loop try the next preference or give up
                        # at the deadline.
                        continue
                    except (OSError, asyncio.IncompleteReadError,
                            ValueError) as error:
                        self.demote_worker(worker_id, reason=str(error))
                        continue
                    return status, payload
        finally:
            for task in pending:
                task.cancel()
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)

    # ------------------------------------------------------------------
    # replicated mutating routes
    # ------------------------------------------------------------------
    async def _dispatch_replicated(
        self, path: str, body: dict, trace_id: str | None,
    ) -> tuple[int, dict | str]:
        """Apply a mutation on a primary, commit it to the log, fan it
        out to every other replica — all under the mutation lock, so
        every worker sees the same ordered history."""
        body = self.state.prepare(path, body)
        async with self._mutate_lock:
            primary_status: int | None = None
            primary_payload: dict | str | None = None
            versions: dict[str, object] = {}
            for worker_id in list(self.worker_ids):
                endpoint = self._workers.get(worker_id)
                if endpoint is None:
                    continue
                try:
                    status, payload = await http_call(
                        endpoint[0], endpoint[1], "POST", path, body,
                        timeout=self.request_timeout, trace_id=trace_id,
                    )
                except (OSError, asyncio.IncompleteReadError,
                        asyncio.TimeoutError, ValueError) as error:
                    self.demote_worker(worker_id, reason=str(error))
                    continue
                if primary_status is None:
                    primary_status, primary_payload = status, payload
                    if status != 200:
                        # The primary rejected (bad spec, unknown name):
                        # every replica would agree — do not commit, do
                        # not fan out.
                        return status, payload
                versions[worker_id] = _payload_version(payload)
            if primary_status is None:
                return 503, {
                    "kind": "error",
                    "error": "no live worker to apply the mutation",
                    "code": "cluster-unavailable",
                }
            if len(set(map(str, versions.values()))) > 1:
                log_event(
                    _log, logging.ERROR, "replica-version-divergence",
                    path=path, versions={k: str(v) for k, v in versions.items()},
                )
            version = _payload_version(primary_payload)
            self.state.record(
                path, body,
                version=version if isinstance(version, int) else None,
            )
            return primary_status, primary_payload

    # ------------------------------------------------------------------
    # aggregation + delegation
    # ------------------------------------------------------------------
    async def _poll_workers(
        self, method: str, path: str,
    ) -> dict[str, tuple[int, dict | str] | None]:
        """One probe per admitted worker; ``None`` marks unreachable."""
        ids = self.worker_ids
        results = await asyncio.gather(*[
            http_call(*self._workers[wid], method, path, timeout=10.0)
            for wid in ids if wid in self._workers
        ], return_exceptions=True)
        verdicts: dict[str, tuple[int, dict | str] | None] = {}
        for wid, result in zip(ids, results):
            verdicts[wid] = None if isinstance(result, BaseException) else result
        return verdicts

    async def _aggregate_health(
        self, kind: str, liveness: bool,
    ) -> tuple[int, dict]:
        """Worker verdicts rolled up through the router.

        Degraded as soon as any worker is non-ok or unreachable; failing
        when a majority is failing/unreachable (quorum lost) or no
        workers are admitted at all.
        """
        verdicts = await self._poll_workers("GET", "/healthz")
        probes: dict[str, dict] = {}
        reasons: list[str] = []
        lost = 0
        for wid, verdict in sorted(verdicts.items()):
            if verdict is None:
                lost += 1
                probes[f"worker-{wid}"] = {
                    "status": "failing", "reason": "unreachable", "data": {},
                }
                reasons.append(f"worker-{wid}: unreachable")
                continue
            _, payload = verdict
            status = payload.get("status", "failing") if isinstance(payload, dict) else "failing"
            if status == "failing":
                lost += 1
            probes[f"worker-{wid}"] = {
                "status": status,
                "reason": "; ".join(payload.get("reasons", []))
                if isinstance(payload, dict) else "malformed verdict",
                "data": {"probes": len(payload.get("probes", {}))}
                if isinstance(payload, dict) else {},
            }
            if status != "ok":
                reasons.append(f"worker-{wid}: {status}")
        total = len(verdicts)
        if total == 0:
            overall = "failing"
            reasons.append("no workers admitted")
        elif lost * 2 > total:
            overall = "failing"
            reasons.append(f"quorum lost ({lost}/{total} workers down)")
        elif reasons:
            overall = "degraded"
        else:
            overall = "ok"
        probes["router-workers"] = {
            "status": overall if overall != "degraded" else "degraded",
            "reason": f"{total - lost}/{total} workers serving",
            "data": {"alive": total - lost, "admitted": total},
        }
        payload = {
            "kind": kind,
            "status": overall,
            "probes": probes,
            "reasons": reasons,
        }
        status_code = 503 if (liveness and overall == "failing") else 200
        return status_code, payload

    async def _aggregate_readiness(self) -> tuple[int, dict]:
        verdicts = await self._poll_workers("GET", "/readyz")
        probes: dict[str, dict] = {}
        ready = bool(verdicts)
        datasets = 0
        for wid, verdict in sorted(verdicts.items()):
            if verdict is None:
                probes[f"worker-{wid}"] = {
                    "status": "failing", "reason": "unreachable", "data": {},
                }
                ready = False
                continue
            status, payload = verdict
            worker_ready = status == 200
            ready = ready and worker_ready
            if isinstance(payload, dict):
                datasets = max(datasets, int(payload.get("datasets", 0) or 0))
            probes[f"worker-{wid}"] = {
                "status": "ok" if worker_ready else "failing",
                "reason": None if worker_ready else "not ready",
                "data": {},
            }
        payload = {
            "kind": "readyz",
            "status": "ok" if ready else "failing",
            "probes": probes,
            "reasons": [] if ready else ["not every worker is ready"],
            "ready": ready,
            "datasets": datasets,
        }
        return (200 if ready else 503), payload

    async def _aggregate_stats(self) -> tuple[int, dict]:
        verdicts = await self._poll_workers("GET", "/stats")
        worker_stats = {
            wid: payload
            for wid, verdict in verdicts.items()
            if verdict is not None
            for _, payload in [verdict]
            if isinstance(payload, dict)
        }
        merged_requests: dict[str, int] = dict(self.request_counts)
        engines = [s.get("engine", {}) for s in worker_stats.values()]
        schedulers = [s.get("scheduler", {}) for s in worker_stats.values()]
        first = next(iter(worker_stats.values()), {})
        cluster_workers = []
        for wid in sorted(verdicts):
            stats = worker_stats.get(wid)
            endpoint = self._workers.get(wid)
            entry: dict = {
                "id": wid,
                "port": endpoint[1] if endpoint else None,
                "reachable": stats is not None,
            }
            if stats is not None:
                entry["requests"] = sum(stats.get("requests", {}).values())
                scheduler = stats.get("scheduler", {})
                engine = stats.get("engine", {})
                entry["executed"] = scheduler.get("executed", 0)
                entry["coalesced"] = scheduler.get("coalesced", 0)
                entry["counts_executed"] = engine.get("counts_executed", 0)
                entry["plans_compiled"] = engine.get("plans_compiled", 0)
            cluster_workers.append(entry)
        payload = {
            "kind": "stats",
            "engine": _merge_numeric(engines),
            "scheduler": _merge_numeric(schedulers),
            "datasets": first.get("datasets", []),
            "dynamic": first.get("dynamic", {}),
            "persistent": first.get("persistent"),
            "requests": merged_requests,
            "metrics": metrics_registry().snapshot(),
            "cluster": {
                "workers": cluster_workers,
                "router": {
                    "admitted": len(self._workers),
                    "ring_nodes": sorted(self.ring.nodes),
                    "requests": dict(self.request_counts),
                    **self.state.summary(),
                },
            },
        }
        return 200, payload

    def _own_metrics(self, body: dict) -> tuple[int, dict | str]:
        fmt = body.get("format", "prometheus")
        if fmt == "json":
            return 200, {
                "kind": "metrics", "metrics": metrics_registry().snapshot(),
            }
        return 200, metrics_registry().render_prometheus()

    async def _delegate(
        self, method: str, path: str, body: dict, trace_id: str | None,
    ) -> tuple[int, dict | str]:
        """Answer a read-only route from the first live worker (the
        replicated planes agree, so any worker's view is the cluster's)."""
        for worker_id in self.worker_ids:
            endpoint = self._workers.get(worker_id)
            if endpoint is None:
                continue
            try:
                return await http_call(
                    endpoint[0], endpoint[1], method, path,
                    body or None, timeout=self.request_timeout,
                    trace_id=trace_id,
                )
            except (OSError, asyncio.IncompleteReadError,
                    asyncio.TimeoutError, ValueError) as error:
                self.demote_worker(worker_id, reason=str(error))
        return 503, {
            "kind": "error",
            "error": "no live worker to delegate to",
            "code": "cluster-unavailable",
        }

    # ------------------------------------------------------------------
    # metrics export
    # ------------------------------------------------------------------
    def _collect_metrics(self) -> list[tuple[str, dict]]:
        return [
            family_snapshot(
                "repro_router_workers", "gauge",
                [({}, len(self._workers))],
                help="Workers currently admitted to the ring.",
            ),
            family_snapshot(
                "repro_router_log_entries", "gauge",
                [({}, len(self.state.entries))],
                help="Committed mutations in the replication log.",
            ),
        ]


def _payload_version(payload) -> object:
    """The committed version a mutating response reports, if any."""
    if not isinstance(payload, dict):
        return None
    if isinstance(payload.get("version"), int):
        return payload["version"]
    dataset = payload.get("dataset")
    if isinstance(dataset, dict):
        return dataset.get("version")
    subscription = payload.get("subscription")
    if isinstance(subscription, dict):
        return subscription.get("version")
    return None


def _merge_numeric(snapshots: list[dict]) -> dict:
    """Sum counters across workers (ratios/rates are re-averaged)."""
    merged: dict[str, int | float] = {}
    counts: dict[str, int] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            merged[key] = merged.get(key, 0) + value
            counts[key] = counts.get(key, 0) + 1
    for key in list(merged):
        if key.endswith(("_rate", "_ratio", "saturation")) and counts[key]:
            merged[key] = round(merged[key] / counts[key], 4)
    return merged


class RouterServer(ServiceServer):
    """The router on a TCP port — reuses :class:`ServiceServer`'s HTTP
    parsing verbatim (that layer only calls ``self.service.handle``);
    only the lifecycle differs, because the router has no scheduler or
    monitors of its own."""

    def __init__(
        self, router: ClusterRouter, host: str = "127.0.0.1", port: int = 0,
    ) -> None:
        super().__init__(router, host=host, port=port)  # type: ignore[arg-type]
        self.router = router

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.router.close()
