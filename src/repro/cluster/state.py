"""Versioned serving-state replication for the cluster.

The cluster replicates the *dataset* plane to every worker — each worker
holds the full :class:`~repro.service.registry.DatasetRegistry`, so any
worker can answer any counting request (the hash ring only decides cache
affinity, which is what makes retry-on-death always safe).  The router
funnels every mutating request (``/register-dataset``,
``/target-update``, ``/subscribe``) through one :class:`ClusterState`:

* mutations are **serialised** (the router applies them under one lock),
  so every replica sees the same ordered sequence and each dataset moves
  through the same version history on every worker — no worker ever
  serves version N's graph against version N+1's cache key;
* each committed mutation is appended to an in-memory **replication
  log**; a worker respawned after a crash replays the log before it
  rejoins the ring, arriving at exactly the committed state;
* per-dataset **versions** are tracked as updates commit, so the router
  can assert replica agreement after every fan-out.

Subscription ids are assigned *by the router* when the client omits one,
so replayed subscriptions land under the same id on every replica.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["ClusterState", "LogEntry"]

#: Mutating routes the router records and fans out to every replica.
REPLICATED_ROUTES = ("/register-dataset", "/target-update", "/subscribe")


@dataclass(frozen=True)
class LogEntry:
    """One committed mutation: replaying these in order rebuilds a worker."""

    sequence: int
    path: str
    body: dict


@dataclass
class ClusterState:
    """The replication log plus per-dataset version bookkeeping."""

    entries: list[LogEntry] = field(default_factory=list)
    versions: dict[str, int] = field(default_factory=dict)
    _sequence: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock)

    @staticmethod
    def dataset_of(path: str, body: dict) -> str | None:
        """The dataset a mutating request addresses, if any."""
        value = body.get("name") if path == "/register-dataset" else body.get("target")
        return value if isinstance(value, str) else None

    def next_sequence(self) -> int:
        with self._lock:
            self._sequence += 1
            return self._sequence

    def prepare(self, path: str, body: dict) -> dict:
        """Normalise a mutating body before fan-out.

        Subscriptions get a router-assigned id when the client sent none,
        so every replica (including future replays) registers the handle
        under one shared id.
        """
        if path == "/subscribe" and not body.get("id"):
            body = {**body, "id": f"sub-{self.next_sequence()}"}
        return body

    def record(self, path: str, body: dict, version: int | None = None) -> LogEntry:
        """Append a *committed* mutation to the replication log."""
        with self._lock:
            self._sequence += 1
            entry = LogEntry(self._sequence, path, body)
            self.entries.append(entry)
            dataset = self.dataset_of(path, body)
            if dataset is not None and version is not None:
                self.versions[dataset] = version
            return entry

    def replay_entries(self) -> list[LogEntry]:
        """The committed log, in commit order (for worker admission)."""
        with self._lock:
            return list(self.entries)

    def summary(self) -> dict:
        with self._lock:
            return {
                "log_entries": len(self.entries),
                "datasets": dict(self.versions),
            }
