"""Ψ-indistinguishability of graphs by conjunctive queries (Section 5.1).

Corollary 2/60: two graphs are k-WL-equivalent iff they agree on the answer
counts of every connected conjunctive query with at least one free variable
and semantic extension width ≤ k.  The infinite family ``Ψ_k`` is sampled
here by enumerating all queries up to a size bound, which yields a finite
(necessary, and in the exercised cases decisive) test battery.
"""

from __future__ import annotations

from functools import lru_cache
from itertools import combinations

from repro.graphs.enumeration import all_connected_graphs_up_to_iso
from repro.graphs.graph import Graph
from repro.queries.answers import count_answers
from repro.queries.extension import semantic_extension_width
from repro.queries.minimality import is_counting_minimal
from repro.queries.query import ConjunctiveQuery


@lru_cache(maxsize=None)
def _query_battery(max_sew: int, max_vertices: int, minimal_only: bool) -> tuple:
    queries: list[ConjunctiveQuery] = []
    seen: set[tuple] = set()
    for n in range(1, max_vertices + 1):
        for graph in all_connected_graphs_up_to_iso(n):
            vertices = graph.vertices()
            for size in range(1, n + 1):
                for free in combinations(vertices, size):
                    query = ConjunctiveQuery(graph, free)
                    key = query.canonical_key()
                    if key in seen:
                        continue
                    seen.add(key)
                    if minimal_only and not is_counting_minimal(query):
                        continue
                    if semantic_extension_width(query) <= max_sew:
                        queries.append(query)
    return tuple(queries)


def query_battery(
    max_sew: int,
    max_vertices: int = 4,
    minimal_only: bool = True,
) -> list[ConjunctiveQuery]:
    """All connected queries (up to isomorphism) with ≥ 1 free variable,
    at most ``max_vertices`` variables, and ``sew ≤ max_sew``."""
    return list(_query_battery(max_sew, max_vertices, minimal_only))


def psi_indistinguishable(
    first: Graph,
    second: Graph,
    queries: list[ConjunctiveQuery],
) -> bool:
    """Do the graphs agree on ``|Ans|`` for every query in the battery
    (Definition 59 restricted to the battery)?"""
    return all(
        count_answers(query, first) == count_answers(query, second)
        for query in queries
    )


def separating_query(
    first: Graph,
    second: Graph,
    queries: list[ConjunctiveQuery],
) -> tuple[ConjunctiveQuery, int, int] | None:
    """The first battery query with different answer counts, if any."""
    for query in queries:
        count_first = count_answers(query, first)
        count_second = count_answers(query, second)
        if count_first != count_second:
            return query, count_first, count_second
    return None


def corollary2_forward_check(
    first: Graph,
    second: Graph,
    k: int,
    max_vertices: int = 4,
) -> bool:
    """Forward direction of Corollary 2 on a finite battery: if the graphs
    are k-WL-equivalent then no query with ``sew ≤ k`` separates them.
    Callers guarantee the k-WL-equivalence (e.g. CFI pairs)."""
    battery = query_battery(k, max_vertices)
    return psi_indistinguishable(first, second, battery)
