"""Counting dominating sets and its WL-dimension (Section 5.4).

Corollary 68's pipeline, implemented end-to-end:

``|Δ_k(G)| = C(n, k) − |Inj((S_k, X_k), Ḡ)| / k!``

where ``Ḡ`` is the self-loop-free complement and the injective star answers
expand into the quantum query ``Σ_i c_i (S_i, X_i)`` with ``c_k = 1``.  The
WL-dimension of ``G ↦ |Δ_k(G)|`` is exactly ``k`` (Corollary 6).
"""

from __future__ import annotations

from fractions import Fraction
from itertools import combinations
from math import factorial

from repro.graphs.graph import Graph
from repro.graphs.operations import complement
from repro.core.quantum import QuantumQuery, injective_answers_quantum
from repro.queries.families import star_query
from repro.utils import binomial


def is_dominating_set(graph: Graph, candidate: set) -> bool:
    """Is ``candidate`` a dominating set of ``graph`` (Definition 65)?"""
    for vertex in graph.vertices():
        if vertex in candidate:
            continue
        if not any(neighbour in candidate for neighbour in graph.neighbours(vertex)):
            return False
    return True


def count_dominating_sets_brute(graph: Graph, k: int) -> int:
    """``|Δ_k(G)|`` by subset enumeration (reference implementation)."""
    return sum(
        1
        for subset in combinations(graph.vertices(), k)
        if is_dominating_set(graph, set(subset))
    )


def star_injective_quantum(k: int) -> QuantumQuery:
    """The quantum expansion of injective k-star answers — the linear
    combination ``Σ_i c_i (S_i, X_i)`` of Corollary 68's proof.  Its top
    coefficient (on ``(S_k, X_k)``) is 1 and ``hsew = k``."""
    return injective_answers_quantum(star_query(k))


def count_injective_star_answers(graph: Graph, k: int) -> int:
    """``|Inj((S_k, X_k), G)|`` via the quantum expansion."""
    value = star_injective_quantum(k).count_answers(graph)
    if value.denominator != 1:
        raise AssertionError("injective star answers must be integral")
    return int(value)


def count_dominating_sets_via_stars(graph: Graph, k: int) -> int:
    """``|Δ_k(G)|`` through the star-query identity (Corollary 68)."""
    n = graph.num_vertices()
    injective = count_injective_star_answers(complement(graph), k)
    value = Fraction(binomial(n, k)) - Fraction(injective, factorial(k))
    if value.denominator != 1:
        raise AssertionError("dominating-set count must be integral")
    return int(value)


def dominating_set_wl_dimension(k: int) -> int:
    """Corollary 6: the WL-dimension of ``G ↦ |Δ_k(G)|`` equals ``k``.

    Evaluated through Corollary 5 on the star quantum expansion, whose
    hereditary semantic extension width is ``k``.
    """
    if k < 1:
        raise ValueError("k must be a positive integer")
    return star_injective_quantum(k).wl_dimension()
