"""Quantum queries: finite linear combinations of conjunctive queries
(Definition 63) and their WL-dimension (Corollary 5).

A quantum query ``Q = Σ c_i · (H_i, X_i)`` has connected, counting-minimal,
pairwise non-isomorphic constituents with non-empty free-variable sets and
non-zero rational coefficients.  The constructor *normalises* arbitrary
term lists into this canonical form (minimise, merge isomorphic terms, drop
zeros), mirroring the uniqueness statement of Chen–Mengel /
Dell–Roth–Wellnitz.

Also provided: the translations that make quantum queries useful —

* unions of conjunctive queries (inclusion–exclusion over conjunctions
  glued on the shared free variables);
* injective-answer expansion over the partition lattice of ``X`` (the
  engine of the dominating-set corollary).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Iterable, Sequence

from repro.errors import GraphError, QueryError
from repro.graphs.graph import Graph
from repro.queries.minimality import counting_minimal_core
from repro.queries.query import ConjunctiveQuery
from repro.queries.extension import semantic_extension_width
from repro.utils import partition_moebius, set_partitions


@dataclass(frozen=True)
class QuantumQuery:
    """An immutable, normalised quantum query."""

    terms: tuple[tuple[Fraction, ConjunctiveQuery], ...]

    def __init__(
        self,
        terms: Iterable[tuple[Fraction | int, ConjunctiveQuery]],
    ) -> None:
        merged: dict[ConjunctiveQuery, Fraction] = {}
        for coefficient, query in terms:
            coefficient = Fraction(coefficient)
            if coefficient == 0:
                continue
            core = counting_minimal_core(query)
            if not core.is_connected():
                raise QueryError(
                    "quantum query constituents must be connected",
                )
            if not core.free_variables:
                raise QueryError(
                    "quantum query constituents need at least one free variable",
                )
            merged[core] = merged.get(core, Fraction(0)) + coefficient
        normalised = tuple(
            sorted(
                (
                    (coefficient, query)
                    for query, coefficient in merged.items()
                    if coefficient != 0
                ),
                key=lambda item: repr(item[1].canonical_key()),
            ),
        )
        object.__setattr__(self, "terms", normalised)

    # ------------------------------------------------------------------
    def constituents(self) -> list[ConjunctiveQuery]:
        return [query for _, query in self.terms]

    def coefficients(self) -> list[Fraction]:
        return [coefficient for coefficient, _ in self.terms]

    def is_zero(self) -> bool:
        return not self.terms

    def count_answers(self, target: Graph) -> Fraction:
        """``|Ans(Q, G)| = Σ c_i |Ans((H_i, X_i), G)|``."""
        from repro.queries.answers import count_answers

        total = Fraction(0)
        for coefficient, query in self.terms:
            total += coefficient * count_answers(query, target)
        return total

    def hereditary_semantic_extension_width(self) -> int:
        """``hsew(Q) = max_i sew(H_i, X_i)`` (Definition 64)."""
        if self.is_zero():
            raise QueryError("hsew of the zero quantum query is undefined")
        return max(
            semantic_extension_width(query) for query in self.constituents()
        )

    def wl_dimension(self) -> int:
        """Corollary 5: the WL-dimension equals ``hsew(Q)``."""
        return max(self.hereditary_semantic_extension_width(), 1)

    # ------------------------------------------------------------------
    def __add__(self, other: "QuantumQuery") -> "QuantumQuery":
        return QuantumQuery(list(self.terms) + list(other.terms))

    def __sub__(self, other: "QuantumQuery") -> "QuantumQuery":
        return self + other.scaled(-1)

    def scaled(self, factor: Fraction | int) -> "QuantumQuery":
        return QuantumQuery(
            [(Fraction(factor) * c, q) for c, q in self.terms],
        )

    def __repr__(self) -> str:
        if self.is_zero():
            return "QuantumQuery(0)"
        parts = [f"{c}·({q.num_variables()}v,{len(q.free_variables)}f)" for c, q in self.terms]
        return f"QuantumQuery({' + '.join(parts)})"


def quantum_from_query(query: ConjunctiveQuery) -> QuantumQuery:
    """Lift a single CQ to the quantum world (coefficient 1)."""
    return QuantumQuery([(Fraction(1), query)])


# ----------------------------------------------------------------------
# conjunction and union
# ----------------------------------------------------------------------
def conjoin_on_free_variables(
    queries: Sequence[ConjunctiveQuery],
) -> ConjunctiveQuery:
    """The conjunction of CQs sharing the same free-variable *labels*:
    free variables are identified by name, quantified variables are tagged
    per conjunct so they stay distinct."""
    if not queries:
        raise QueryError("conjunction of zero queries is undefined")
    free = queries[0].free_variables
    if any(q.free_variables != free for q in queries):
        raise QueryError(
            "conjunction requires identical free-variable label sets",
        )
    graph = Graph(vertices=list(free))
    for index, query in enumerate(queries):
        rename = {
            v: (v if v in free else ("q", index, v))
            for v in query.graph.vertices()
        }
        for v in query.graph.vertices():
            graph.add_vertex(rename[v])
        for u, v in query.graph.edges():
            graph.add_edge(rename[u], rename[v])
    return ConjunctiveQuery(graph, free)


def union_to_quantum(queries: Sequence[ConjunctiveQuery]) -> QuantumQuery:
    """A union of CQs (same free variables) as a quantum query via
    inclusion–exclusion:

    ``|Ans(ϕ₁ ∨ … ∨ ϕ_m)| = Σ_{∅≠S} (−1)^{|S|+1} |Ans(⋀_{i∈S} ϕ_i)|``.
    """
    from itertools import combinations

    if not queries:
        raise QueryError("union of zero queries is undefined")
    terms: list[tuple[Fraction, ConjunctiveQuery]] = []
    indices = range(len(queries))
    for size in range(1, len(queries) + 1):
        sign = Fraction((-1) ** (size + 1))
        for chosen in combinations(indices, size):
            conjunction = conjoin_on_free_variables(
                [queries[i] for i in chosen],
            )
            terms.append((sign, conjunction))
    return QuantumQuery(terms)


# ----------------------------------------------------------------------
# injective answers (disequalities on the free variables)
# ----------------------------------------------------------------------
def _quotient_query_by_partition(
    query: ConjunctiveQuery,
    partition: list[list],
) -> ConjunctiveQuery | None:
    """Identify free variables within each block; ``None`` when two adjacent
    free variables are identified (self-loop ⇒ identically zero answers)."""
    representative: dict = {}
    for block in partition:
        rep = sorted(block, key=repr)[0]
        for member in block:
            representative[member] = rep
    mapping = {
        v: representative.get(v, v) for v in query.graph.vertices()
    }
    graph = Graph(vertices=set(mapping.values()))
    for u, v in query.graph.edges():
        a, b = mapping[u], mapping[v]
        if a == b:
            return None
        try:
            graph.add_edge(a, b)
        except GraphError:  # pragma: no cover - defensive
            return None
    new_free = frozenset(representative.get(x, x) for x in query.free_variables)
    return ConjunctiveQuery(graph, new_free)


def injective_answers_quantum(query: ConjunctiveQuery) -> QuantumQuery:
    """The quantum query computing ``|Inj((H,X), G)|`` — answers that are
    injective on the free variables — via Möbius inversion over the
    partition lattice of ``X`` (the identity used in Corollary 68)."""
    terms: list[tuple[Fraction, ConjunctiveQuery]] = []
    for partition in set_partitions(sorted(query.free_variables, key=repr)):
        quotient_query = _quotient_query_by_partition(query, partition)
        if quotient_query is None:
            continue
        terms.append((Fraction(partition_moebius(partition)), quotient_query))
    return QuantumQuery(terms)


def count_injective_answers(query: ConjunctiveQuery, target: Graph) -> int:
    """``|Inj((H,X), G)|`` by direct filtering (reference implementation)."""
    from repro.queries.answers import enumerate_answers

    count = 0
    for answer in enumerate_answers(query, target):
        if len(set(answer.values())) == len(answer):
            count += 1
    return count
