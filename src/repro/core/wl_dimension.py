"""WL-dimension of conjunctive queries (Theorem 1 and its extensions).

``wl_dimension(query)`` evaluates the paper's main theorem:

* connected query with ``X ≠ ∅`` — WL-dimension = ``sew(H, X)``
  (Theorem 1);
* disconnected query — the maximum over connected components
  (remark (A) in Section 1.3);
* Boolean query (``X = ∅``) — treewidth of the homomorphic core
  (remark (B), following Roberson).

``wl_dimension_upper_bound`` is Theorem 21 (``≤ ew`` for the query as
given); the certified lower bound lives in :mod:`repro.core.witnesses`.
"""

from __future__ import annotations

from repro.errors import QueryError
from repro.graphs.graph import Graph, Vertex
from repro.homs.brute_force import enumerate_homomorphisms
from repro.queries.extension import extension_width, semantic_extension_width
from repro.queries.minimality import counting_minimal_core
from repro.queries.query import ConjunctiveQuery
from repro.treewidth.exact import treewidth


def graph_core(graph: Graph) -> Graph:
    """The homomorphic core of a graph: shrink through retractions until
    every endomorphism is an automorphism."""
    current = graph.copy()
    while True:
        total = current.num_vertices()
        shrinking: dict[Vertex, Vertex] | None = None
        for endo in enumerate_homomorphisms(current, current):
            if len(set(endo.values())) < total:
                shrinking = endo
                break
        if shrinking is None:
            return current
        current = current.induced_subgraph(set(shrinking.values()))


def _component_queries(query: ConjunctiveQuery) -> list[ConjunctiveQuery]:
    return [
        ConjunctiveQuery(
            query.graph.induced_subgraph(component),
            query.free_variables & component,
        )
        for component in query.graph.connected_components()
    ]


def wl_dimension(query: ConjunctiveQuery) -> int:
    """The WL-dimension of ``G ↦ |Ans((H,X), G)|`` (Definition 20).

    Computed via Theorem 1 (and remarks (A)/(B) for the disconnected and
    Boolean cases).  The result is a positive integer; queries whose answer
    count is a function of ``|V(G)|`` alone still have dimension 1 because
    1-WL determines the number of vertices.
    """
    if query.num_variables() == 0:
        raise QueryError("the empty query has no well-defined WL-dimension")
    if not query.is_connected():
        return max(wl_dimension(part) for part in _component_queries(query))
    if query.is_boolean():
        # Counting answers = deciding hom existence; dimension is the
        # treewidth of the homomorphic core (but at least 1).
        return max(treewidth(graph_core(query.graph)), 1)
    return max(semantic_extension_width(query), 1)


def wl_dimension_upper_bound(query: ConjunctiveQuery) -> int:
    """Theorem 21: the WL-dimension is at most ``ew(H, X)`` — no
    minimisation, so this can exceed :func:`wl_dimension`."""
    if not query.is_connected():
        return max(
            wl_dimension_upper_bound(part) for part in _component_queries(query)
        )
    return max(extension_width(query), 1)


def wl_invariant_on(
    query: ConjunctiveQuery,
    pairs: list[tuple[Graph, Graph]],
) -> bool:
    """Empirically check k-WL-invariance of the answer count on candidate
    k-WL-equivalent ``pairs`` (callers guarantee the equivalence)."""
    from repro.queries.answers import count_answers

    return all(
        count_answers(query, first) == count_answers(query, second)
        for first, second in pairs
    )


def analyse_query(query: ConjunctiveQuery) -> dict:
    """A one-stop structural report used by the CLI and the E1 benchmark."""
    from repro.queries.star_size import quantified_star_size

    core = counting_minimal_core(query)
    report = {
        "variables": query.num_variables(),
        "free_variables": len(query.free_variables),
        "atoms": query.num_atoms(),
        "connected": query.is_connected(),
        "full": query.is_full(),
        "treewidth": treewidth(query.graph),
        "quantified_star_size": quantified_star_size(query),
        "extension_width": (
            extension_width(query) if query.is_connected() else None
        ),
        "core_variables": core.num_variables(),
        "counting_minimal": core.num_variables() == query.num_variables(),
    }
    report["semantic_extension_width"] = (
        semantic_extension_width(query) if query.is_connected() else None
    )
    report["wl_dimension"] = wl_dimension(query)
    return report
