"""The complexity dichotomy for counting answers (Corollary 4).

Dell–Roth–Wellnitz (building on Chen–Durand–Mengel): for a recursively
enumerable class Ψ of counting-minimal connected queries with free
variables, ``#CQ(Ψ)`` is polynomial-time iff both the treewidth of the
queries and the treewidth of their *contracts* ``Γ(H,X)[X]`` are bounded —
and Corollary 4 re-states this as: iff the WL-dimension of Ψ is bounded.

This module exposes the three equivalent profiles for concrete query
classes (given as finite samples or generators) and verifies the
equivalence claimed in Corollary 4's proof:

``max(tw, contract-tw) ≤ ew ≤ tw + contract-tw + 1``  (the proof's final
construction glues contract bags with component decompositions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.core.wl_dimension import wl_dimension
from repro.queries.extension import contract_graph, extension_width
from repro.queries.minimality import counting_minimal_core
from repro.queries.query import ConjunctiveQuery
from repro.treewidth.exact import treewidth


def contract_treewidth(query: ConjunctiveQuery) -> int:
    """Treewidth of the contract ``Γ(H, X)[X]``."""
    return treewidth(contract_graph(query))


@dataclass(frozen=True)
class QueryComplexityProfile:
    """The three width parameters the dichotomy trades between."""

    treewidth: int
    contract_treewidth: int
    extension_width: int
    wl_dimension: int

    @property
    def satisfies_sandwich(self) -> bool:
        """The Corollary 4 proof's inequalities."""
        lower = max(self.treewidth, self.contract_treewidth)
        upper = self.treewidth + self.contract_treewidth + 1
        return lower <= self.extension_width <= upper


def complexity_profile(query: ConjunctiveQuery) -> QueryComplexityProfile:
    """Width profile of a single (core of a) query."""
    core = counting_minimal_core(query)
    return QueryComplexityProfile(
        treewidth=treewidth(core.graph),
        contract_treewidth=contract_treewidth(core),
        extension_width=extension_width(core),
        wl_dimension=wl_dimension(core),
    )


@dataclass(frozen=True)
class ClassVerdict:
    """Tractability verdict for a (sampled) query class."""

    max_treewidth: int
    max_contract_treewidth: int
    max_wl_dimension: int
    sample_size: int

    def polynomial_time_if_bounded_by(self, bound: int) -> bool:
        """Corollary 4 applied at a candidate bound: the sample is
        consistent with polynomial-time countability iff the WL-dimension
        stays below the bound (equivalently both structural widths do)."""
        return self.max_wl_dimension <= bound


def classify_query_class(queries: Iterable[ConjunctiveQuery]) -> ClassVerdict:
    """Profile a finite sample of a query class.

    For genuinely infinite classes the caller samples a growing prefix; a
    growing ``max_wl_dimension`` over prefixes is the experimental
    signature of intractability (experiment E7 plots exactly this for the
    star family vs the bounded path family).
    """
    max_tw = 0
    max_contract = 0
    max_dim = 0
    count = 0
    for query in queries:
        profile = complexity_profile(query)
        max_tw = max(max_tw, profile.treewidth)
        max_contract = max(max_contract, profile.contract_treewidth)
        max_dim = max(max_dim, profile.wl_dimension)
        count += 1
    return ClassVerdict(
        max_treewidth=max_tw,
        max_contract_treewidth=max_contract,
        max_wl_dimension=max_dim,
        sample_size=count,
    )
