"""Lower-bound witnesses (Section 4): CFI pairs over ℓ-copies.

Theorem 24's proof pipeline, made executable.  For a counting-minimal
connected query ``(H, X)`` with ``∅ ⊊ X ⊊ V(H)``:

1. pick an odd ℓ with ``tw(F_ℓ(H, X)) = ew(H, X)`` (Corollary 18);
2. let ``F = F_ℓ(H, X)`` and ``c = γ(π₁(·))`` (Observation 39);
3. the twisted pair ``χ(F, ∅)`` / ``χ(F, {x₁})`` — with ``x₁ ∈ X``
   adjacent to a quantified variable — is ``(ew−1)``-WL-equivalent
   (Lemma 27) yet has different colour-prescribed answer counts
   (Lemma 57), and cloning colour blocks (Lemma 40) turns the coloured gap
   into a plain ``|Ans|`` gap while preserving WL-equivalence (Lemma 35).

This module builds the witness, verifies each lemma computationally, and
searches clone vectors for the uncoloured separation.  The extendability
criterion (Definition 51, conditions (E1)/(E2)) is implemented verbatim and
checked against the answer-set semantics (Lemma 55).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterator, Mapping

from repro.cfi.cloning import clone_colour_blocks, clone_colouring
from repro.cfi.construction import cfi_graph
from repro.engine.engine import default_engine
from repro.errors import WitnessError
from repro.graphs.graph import Graph, Vertex
from repro.queries.answers import (
    count_answers,
    count_answers_id,
    count_cp_answers,
)
from repro.queries.extension import ell_copy, extension_width, saturating_odd_ell
from repro.queries.minimality import counting_minimal_core, is_counting_minimal
from repro.queries.query import ConjunctiveQuery
from repro.treewidth.exact import treewidth
from repro.wl.hom_indistinguishability import hom_indistinguishable_up_to
from repro.wl.kwl import k_wl_equivalent


@dataclass(frozen=True)
class LowerBoundWitness:
    """The fully assembled lower-bound gadget for one query."""

    query: ConjunctiveQuery          # counting-minimal core
    ell: int                         # odd, saturating tw(F_ℓ) = ew
    width: int                       # ew(query) = tw(f_graph)
    f_graph: Graph                   # F = F_ℓ(H, X)
    gamma: dict                      # γ : V(F) → V(H)
    twist_vertex: Vertex             # x₁ ∈ X adjacent to Y
    untwisted: Graph                 # χ(F, ∅)
    twisted: Graph                   # χ(F, {x₁})
    untwisted_colouring: dict        # c = γ(π₁(·)) on χ(F, ∅)
    twisted_colouring: dict          # c = γ(π₁(·)) on χ(F, {x₁})


def _free_vertex_adjacent_to_quantified(query: ConjunctiveQuery) -> Vertex:
    quantified = query.quantified_variables
    for x in sorted(query.free_variables, key=repr):
        if any(u in quantified for u in query.graph.neighbours(x)):
            return x
    raise WitnessError(
        "no free variable is adjacent to a quantified variable; the query "
        "is disconnected or full",
    )


def build_lower_bound_witness(
    query: ConjunctiveQuery,
    ell: int | None = None,
) -> LowerBoundWitness:
    """Construct the Section 4 witness for ``query``.

    The query is first replaced by its counting-minimal core (counting
    equivalence preserves the WL-dimension).  Requires a connected core with
    ``∅ ⊊ X ⊊ V(H)`` and extension width ≥ 2 — for width 1 the lower bound
    ``WL-dim ≥ 1`` holds vacuously (the WL-dimension is a positive integer),
    and for full queries the pair is built directly on ``H`` (Theorem 1's
    first case); see :func:`build_full_query_witness`.
    """
    core = counting_minimal_core(query)
    if not core.is_connected():
        raise WitnessError("witness construction needs a connected query")
    if not core.free_variables:
        raise WitnessError("witness construction needs at least one free variable")
    if core.is_full():
        raise WitnessError(
            "full queries are handled by build_full_query_witness",
        )

    width = extension_width(core)
    if width < 2:
        raise WitnessError(
            "extension width < 2: the lower bound is vacuous and the CFI "
            "pair over a treewidth-1 graph is not even 1-WL-equivalent",
        )
    if ell is None:
        ell = saturating_odd_ell(core, width)
    if ell % 2 == 0:
        raise WitnessError("ell must be odd (Lemma 57 requires it)")

    f_graph, gamma = ell_copy(core, ell)
    actual = treewidth(f_graph)
    if actual != width:
        raise WitnessError(
            f"tw(F_{ell}) = {actual} != ew = {width}; pick a saturating ell",
        )

    twist = _free_vertex_adjacent_to_quantified(core)
    untwisted = cfi_graph(f_graph, ())
    twisted = cfi_graph(f_graph, (twist,))

    def colouring(cfi: Graph) -> dict:
        return {vertex: gamma[vertex[0]] for vertex in cfi.vertices()}

    return LowerBoundWitness(
        query=core,
        ell=ell,
        width=width,
        f_graph=f_graph,
        gamma=gamma,
        twist_vertex=twist,
        untwisted=untwisted,
        twisted=twisted,
        untwisted_colouring=colouring(untwisted),
        twisted_colouring=colouring(twisted),
    )


@dataclass(frozen=True)
class FullQueryWitness:
    """Witness for full queries: the CFI pair over ``H`` itself (Theorem 1's
    quantifier-free case, following Neuen)."""

    query: ConjunctiveQuery
    width: int
    untwisted: Graph
    twisted: Graph


def build_full_query_witness(query: ConjunctiveQuery) -> FullQueryWitness:
    """For a full query, ``sew = tw(H)`` and the witness pair is
    ``χ(H, ∅) / χ(H, {w})``; answers are homomorphisms and Roberson's
    Theorem 32 gives the strict count gap."""
    if not query.is_full():
        raise WitnessError("build_full_query_witness expects a full query")
    if not query.is_connected():
        raise WitnessError("witness construction needs a connected query")
    width = treewidth(query.graph)
    if width < 2:
        raise WitnessError("tw < 2: the lower bound is vacuous")
    base = query.graph
    twist = base.vertices()[0]
    return FullQueryWitness(
        query=query,
        width=width,
        untwisted=cfi_graph(base, ()),
        twisted=cfi_graph(base, (twist,)),
    )


# ----------------------------------------------------------------------
# verification: coloured gap (Lemmas 50, 56, 57)
# ----------------------------------------------------------------------
def colour_prescribed_gap(witness: LowerBoundWitness) -> tuple[int, int]:
    """``(|cpAns| on χ(F, ∅), |cpAns| on χ(F, {x₁}))`` — Lemma 56 predicts
    strictly more answers on the untwisted side."""
    untwisted = count_cp_answers(
        witness.query, witness.untwisted, witness.untwisted_colouring,
    )
    twisted = count_cp_answers(
        witness.query, witness.twisted, witness.twisted_colouring,
    )
    return untwisted, twisted


def answer_id_gap(witness: LowerBoundWitness) -> tuple[int, int]:
    """``(|Ans_id| on χ(F, ∅), |Ans_id| on χ(F, {x₁}))`` — equals the
    colour-prescribed counts by Lemma 50 (counting minimality)."""
    untwisted = count_answers_id(
        witness.query, witness.untwisted, witness.untwisted_colouring,
    )
    twisted = count_answers_id(
        witness.query, witness.twisted, witness.twisted_colouring,
    )
    return untwisted, twisted


# ----------------------------------------------------------------------
# verification: extendability (Definition 51, Lemmas 52-55)
# ----------------------------------------------------------------------
def _component_copies(
    witness: LowerBoundWitness,
) -> list[list[frozenset]]:
    """``V_i^j`` for each component ``C_i`` of ``H[Y]`` and copy ``j``."""
    copies: list[list[frozenset]] = []
    for component in witness.query.quantified_components():
        per_copy = [
            frozenset((y, j) for y in component)
            for j in range(1, witness.ell + 1)
        ]
        copies.append(per_copy)
    return copies


def enumerate_extendable_assignments(
    witness: LowerBoundWitness,
    twisted: bool,
) -> Iterator[dict[Vertex, Vertex]]:
    """``E(X, F, W)`` (Definition 51) for ``W = ∅`` or ``W = {x₁}``.

    Assignments ``φ(x_p) = (x_p, S_p)`` over the CFI graph satisfying

    * (E1) for every free-free edge ``{x_a, x_b}`` of ``H``:
      ``x_a ∈ S_b ⇔ x_b ∈ S_a``;
    * (E2) for every component ``C_i`` of ``H[Y]`` there is a copy ``j``
      with ``Σ_p |S_p ∩ V_i^j|`` even.
    """
    cfi = witness.twisted if twisted else witness.untwisted
    free = sorted(witness.query.free_variables, key=repr)
    choices: dict[Vertex, list] = {x: [] for x in free}
    for vertex in cfi.vertices():
        base = vertex[0]
        if base in choices:
            choices[base].append(vertex)

    component_copies = _component_copies(witness)
    free_edges = [
        (u, v)
        for u, v in witness.query.graph.edges()
        if u in witness.query.free_variables and v in witness.query.free_variables
    ]

    for images in product(*(choices[x] for x in free)):
        assignment = dict(zip(free, images))
        sets = {x: assignment[x][1] for x in free}

        if any(
            (a in sets[b]) != (b in sets[a]) for a, b in free_edges
        ):
            continue

        satisfied = True
        for per_copy in component_copies:
            if not any(
                sum(len(sets[x] & copy) for x in free) % 2 == 0
                for copy in per_copy
            ):
                satisfied = False
                break
        if satisfied:
            yield assignment


def count_extendable_assignments(
    witness: LowerBoundWitness,
    twisted: bool,
) -> int:
    """``|E(X, F, W)|``."""
    return sum(1 for _ in enumerate_extendable_assignments(witness, twisted))


def extendability_matches_answers(witness: LowerBoundWitness) -> bool:
    """Lemma 55: ``cpAns((H,X), (χ(F,W), c)) = E(X, F, W)`` for both sides."""
    for twisted in (False, True):
        cfi = witness.twisted if twisted else witness.untwisted
        colouring = (
            witness.twisted_colouring if twisted else witness.untwisted_colouring
        )
        expected = {
            tuple(sorted(a.items(), key=lambda kv: repr(kv[0])))
            for a in enumerate_extendable_assignments(witness, twisted)
        }
        from repro.queries.answers import enumerate_cp_answers

        actual = {
            tuple(sorted(a.items(), key=lambda kv: repr(kv[0])))
            for a in enumerate_cp_answers(witness.query, cfi, colouring)
        }
        if expected != actual:
            return False
    return True


# ----------------------------------------------------------------------
# verification: WL-equivalence of the pair
# ----------------------------------------------------------------------
def verify_wl_equivalence(
    witness: LowerBoundWitness,
    exact_limit: int = 2,
    hom_pattern_size: int = 5,
) -> bool:
    """Check ``χ(F, ∅) ≅_{k-1} χ(F, {x₁})`` with ``k = ew``.

    Runs the exact (k−1)-WL refinement when ``k−1 ≤ exact_limit`` (folklore
    k-WL is exponential in k) and otherwise falls back to homomorphism
    indistinguishability over all connected patterns of treewidth ≤ k−1
    with at most ``hom_pattern_size`` vertices — a finite but stringent
    certificate.
    """
    level = witness.width - 1
    if level <= exact_limit:
        return k_wl_equivalent(witness.untwisted, witness.twisted, level)
    return hom_indistinguishable_up_to(
        witness.untwisted, witness.twisted, level, hom_pattern_size,
    )


def verify_wl_distinguished_at_width(witness: LowerBoundWitness) -> bool:
    """Certificate that the pair is *not* k-WL-equivalent at ``k = ew``:
    by Definition 19 it suffices to exhibit one treewidth-k pattern with
    different hom counts — ``F`` itself (tw(F) = ew) works by Theorem 32 +
    Lemma 57's strictness.

    Counted through the engine: ``F`` is compiled once and executed against
    both CFI graphs (a one-pattern-two-targets batch)."""
    (counts,) = default_engine().count_batch(
        [witness.f_graph], [witness.untwisted, witness.twisted],
    )
    return counts[0] != counts[1]


# ----------------------------------------------------------------------
# clone search (Lemmas 38, 40 and Corollary 47)
# ----------------------------------------------------------------------
def cloned_pair(
    witness: LowerBoundWitness,
    multiplicities: tuple[int, ...],
) -> tuple[Graph, Graph, dict, dict]:
    """``G(χ(F, W), F, c, v⃗, z⃗)`` for both sides, with v⃗ the free
    variables in sorted order, plus the inherited colourings."""
    free = sorted(witness.query.free_variables, key=repr)
    if len(multiplicities) != len(free):
        raise WitnessError("one multiplicity per free variable required")
    cloned_untwisted = clone_colour_blocks(
        witness.untwisted, witness.untwisted_colouring, free, multiplicities,
    )
    cloned_twisted = clone_colour_blocks(
        witness.twisted, witness.twisted_colouring, free, multiplicities,
    )
    colour_untwisted = clone_colouring(
        cloned_untwisted, witness.untwisted_colouring,
    )
    colour_twisted = clone_colouring(cloned_twisted, witness.twisted_colouring)
    return cloned_untwisted, cloned_twisted, colour_untwisted, colour_twisted


def search_clone_separation(
    witness: LowerBoundWitness,
    max_multiplicity: int = 3,
) -> tuple[tuple[int, ...], int, int] | None:
    """Find a clone vector ``z⃗`` with
    ``|Ans((H,X), G(χ(F,∅),…,z⃗))| ≠ |Ans((H,X), G(χ(F,{x₁}),…,z⃗))|``.

    Lemma 40 guarantees existence (over all positive integer vectors) given
    the coloured gap; in practice tiny vectors — usually ``(1, …, 1)`` —
    already separate.  Returns ``(z⃗, count_untwisted, count_twisted)`` or
    ``None`` if no vector within the budget separates.
    """
    k = len(witness.query.free_variables)
    vectors = sorted(
        product(range(1, max_multiplicity + 1), repeat=k),
        key=lambda vec: (max(vec), sum(vec), vec),
    )
    for multiplicities in vectors:
        untwisted_graph, twisted_graph, _, _ = cloned_pair(witness, multiplicities)
        first = count_answers(witness.query, untwisted_graph)
        second = count_answers(witness.query, twisted_graph)
        if first != second:
            return multiplicities, first, second
    return None


# ----------------------------------------------------------------------
# one-call verification
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WitnessReport:
    """Everything Theorem 24 asserts, checked on one witness."""

    witness: LowerBoundWitness
    cp_answers: tuple[int, int]
    id_answers: tuple[int, int]
    extendable: tuple[int, int]
    coloured_gap_strict: bool
    lemma50_holds: bool
    lemma55_holds: bool
    wl_equivalent_below: bool
    distinguished_at_width: bool
    clone_separation: tuple[tuple[int, ...], int, int] | None

    @property
    def all_checks_pass(self) -> bool:
        return (
            self.coloured_gap_strict
            and self.lemma50_holds
            and self.lemma55_holds
            and self.wl_equivalent_below
            and self.distinguished_at_width
        )


def verify_lower_bound(
    query: ConjunctiveQuery,
    max_multiplicity: int = 2,
    check_wl: bool = True,
) -> WitnessReport:
    """Build the witness for ``query`` and verify every Section 4 claim."""
    witness = build_lower_bound_witness(query)
    if not is_counting_minimal(witness.query):
        raise WitnessError("core computation failed to reach minimality")
    cp = colour_prescribed_gap(witness)
    ans_id = answer_id_gap(witness)
    extendable = (
        count_extendable_assignments(witness, twisted=False),
        count_extendable_assignments(witness, twisted=True),
    )
    return WitnessReport(
        witness=witness,
        cp_answers=cp,
        id_answers=ans_id,
        extendable=extendable,
        coloured_gap_strict=cp[0] > cp[1],
        lemma50_holds=cp == ans_id,
        lemma55_holds=extendability_matches_answers(witness),
        wl_equivalent_below=(
            verify_wl_equivalence(witness) if check_wl else True
        ),
        distinguished_at_width=verify_wl_distinguished_at_width(witness),
        clone_separation=search_clone_separation(witness, max_multiplicity),
    )
