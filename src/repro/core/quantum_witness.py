"""Lower-bound witnesses for quantum queries (Corollary 5's proof).

The subtlety of Corollary 5: on the witness pair ``(G, G')`` of the
maximum-sew constituent, the *linear combination* may cancel — different
constituents' gaps can sum to zero.  The proof fixes this with the tensor
trick: since ``|Ans((H_i, X_i), G ⊗ H)|`` varies with ``H`` independently
per constituent (the answer-count matrix over a finite graph family has
full rank, [DRW19, Lemma 34(iii)]), some ``H`` un-cancels the sum, and
``G ⊗ H ≅_{k-1} G' ⊗ H`` persists because hom counts multiply over ⊗.

:func:`quantum_lower_bound_witness` executes that argument: build the
clone-separated pair for the dominant constituent, then search small
connected graphs ``H`` until ``|Ans(Q, G ⊗ H)| ≠ |Ans(Q, G' ⊗ H)|``.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction

from repro.core.quantum import QuantumQuery
from repro.core.witnesses import (
    build_lower_bound_witness,
    cloned_pair,
    search_clone_separation,
)
from repro.errors import WitnessError
from repro.graphs.enumeration import all_connected_graphs_up_to_iso
from repro.graphs.graph import Graph
from repro.graphs.operations import tensor_product
from repro.queries.extension import semantic_extension_width


@dataclass(frozen=True)
class QuantumWitness:
    """A pair of (hsew−1)-WL-equivalent graphs separated by the quantum
    query, possibly after tensoring with a small helper graph."""

    quantum: QuantumQuery
    first: Graph
    second: Graph
    helper: Graph | None          # None: the base pair already separates
    value_first: Fraction
    value_second: Fraction

    @property
    def separates(self) -> bool:
        return self.value_first != self.value_second


def quantum_lower_bound_witness(
    quantum: QuantumQuery,
    max_multiplicity: int = 2,
    helper_max_vertices: int = 4,
) -> QuantumWitness:
    """Execute Corollary 5's lower-bound construction for ``quantum``.

    Raises :class:`WitnessError` when the dominant constituent has
    ``sew < 2`` (the bound is then vacuous) or when no separation is found
    within the search budget — Corollary 5 guarantees one exists for some
    helper, so a budget failure signals "increase the bounds", not a
    theory violation.
    """
    if quantum.is_zero():
        raise WitnessError("the zero quantum query has no witness")
    dominant = max(
        quantum.constituents(), key=semantic_extension_width,
    )
    width = semantic_extension_width(dominant)
    if width < 2:
        raise WitnessError("hsew < 2: the lower bound is vacuous")

    witness = build_lower_bound_witness(dominant)
    separation = search_clone_separation(witness, max_multiplicity)
    if separation is None:
        raise WitnessError(
            "no clone separation for the dominant constituent within budget",
        )
    base_first, base_second, _, _ = cloned_pair(witness, separation[0])

    # Try the base pair first — generically the combination does not cancel.
    value_first = quantum.count_answers(base_first)
    value_second = quantum.count_answers(base_second)
    if value_first != value_second:
        return QuantumWitness(
            quantum=quantum,
            first=base_first,
            second=base_second,
            helper=None,
            value_first=value_first,
            value_second=value_second,
        )

    # Cancellation: sweep small connected helpers H and tensor.
    for n in range(1, helper_max_vertices + 1):
        for helper in all_connected_graphs_up_to_iso(n):
            tensored_first = tensor_product(base_first, helper)
            tensored_second = tensor_product(base_second, helper)
            value_first = quantum.count_answers(tensored_first)
            value_second = quantum.count_answers(tensored_second)
            if value_first != value_second:
                return QuantumWitness(
                    quantum=quantum,
                    first=tensored_first,
                    second=tensored_second,
                    helper=helper,
                    value_first=value_first,
                    value_second=value_second,
                )
    raise WitnessError(
        "no separating helper within the size bound; increase "
        "helper_max_vertices",
    )


def build_cancelling_quantum(
    witness_pair: tuple[Graph, Graph],
    query_a=None,
    query_b=None,
) -> QuantumQuery:
    """A quantum query engineered to cancel on the given pair — the
    adversarial input that forces the tensor trick.

    With gaps ``d_a, d_b`` of the two constituent queries on the pair, the
    combination ``d_b · q_a − d_a · q_b`` has zero total gap there by
    construction.  Both gaps must be non-zero (otherwise no non-trivial
    cancelling combination of the two exists); the defaults — the 2-star
    and the two-islands query, both of sew 2 — have non-zero gaps on the
    2-star clone pair.
    """
    from repro.queries.answers import count_answers
    from repro.queries.families import star_query
    from repro.queries.query import query_from_atoms

    if query_a is None:
        query_a = star_query(2)
    if query_b is None:
        query_b = query_from_atoms(
            [("x1", "y1"), ("x2", "y1"), ("x2", "y2"), ("x3", "y2")],
            ["x1", "x2", "x3"],
        )
    first, second = witness_pair
    gap_a = count_answers(query_a, first) - count_answers(query_a, second)
    gap_b = count_answers(query_b, first) - count_answers(query_b, second)
    if gap_a == 0 or gap_b == 0:
        raise WitnessError(
            "pair does not separate both constituents; pick other queries",
        )
    return QuantumQuery(
        [(Fraction(gap_b), query_a), (Fraction(-gap_a), query_b)],
    )
