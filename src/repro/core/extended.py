"""Conjunctive queries with disequalities and negations on free variables
(Section 5.3).

The paper: unions of CQs, existential positive queries, and CQs with
*disequalities* (``x ≠ y``) and *negations* (``¬E(x, y)``) over the free
variables all have unique quantum-query expressions, so Corollary 5
determines their WL-dimension as the hereditary sew of the expansion.

:class:`ExtendedQuery` models a CQ plus disequality pairs and negated
free-free atoms; :func:`extended_to_quantum` performs the two
inclusion–exclusion passes:

* negations: ``¬E`` constraints expand by ``|Ans_{¬E}| = Σ_T (−1)^{|T|}
  |Ans(query + T)|`` over subsets ``T`` of the negated atoms;
* disequalities: Möbius inversion over the partitions of the free
  variables consistent with the disequality graph.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations
from typing import Iterable

from repro.core.quantum import QuantumQuery, _quotient_query_by_partition
from repro.errors import QueryError
from repro.graphs.graph import Graph, Vertex
from repro.queries.query import ConjunctiveQuery


@dataclass(frozen=True)
class ExtendedQuery:
    """A CQ with optional ``x ≠ y`` and ``¬E(x, y)`` constraints on free
    variables."""

    base: ConjunctiveQuery
    disequalities: frozenset  # of frozenset pairs of free variables
    negated_atoms: frozenset  # of frozenset pairs of free variables

    def __init__(
        self,
        base: ConjunctiveQuery,
        disequalities: Iterable = (),
        negated_atoms: Iterable = (),
    ) -> None:
        free = base.free_variables

        def normalise(pairs: Iterable, kind: str) -> frozenset:
            result = set()
            for pair in pairs:
                u, v = tuple(pair)
                if u == v:
                    raise QueryError(f"{kind} pair must have distinct variables")
                if u not in free or v not in free:
                    raise QueryError(
                        f"{kind} constraints only apply to free variables",
                    )
                result.add(frozenset((u, v)))
            return frozenset(result)

        object.__setattr__(self, "base", base)
        object.__setattr__(
            self, "disequalities", normalise(disequalities, "disequality"),
        )
        negated = normalise(negated_atoms, "negated atom")
        for pair in negated:
            u, v = tuple(pair)
            if base.graph.has_edge(u, v):
                raise QueryError(
                    f"atom E({u}, {v}) both asserted and negated",
                )
        object.__setattr__(self, "negated_atoms", negated)

    def count_answers_direct(self, target: Graph) -> int:
        """Reference semantics: filter base answers by the constraints."""
        from repro.queries.answers import enumerate_answers

        count = 0
        for answer in enumerate_answers(self.base, target):
            if any(
                answer[u] == answer[v]
                for u, v in map(tuple, self.disequalities)
            ):
                continue
            if any(
                answer[u] == answer[v] or target.has_edge(answer[u], answer[v])
                for u, v in map(tuple, self.negated_atoms)
            ):
                continue
            count += 1
        return count


def _with_extra_atoms(
    query: ConjunctiveQuery,
    atoms: Iterable[tuple[Vertex, Vertex]],
) -> ConjunctiveQuery:
    graph = query.graph.copy()
    for u, v in atoms:
        graph.add_edge(u, v)
    return ConjunctiveQuery(graph, query.free_variables)


def extended_to_quantum(query: ExtendedQuery) -> QuantumQuery:
    """The quantum expansion whose evaluation equals the extended
    semantics on every graph (Section 5.3).

    A negated atom ``¬E(u, v)`` on a *simple* graph excludes both the edge
    case and the equality case (``E(v, v)`` can never hold but ``u = v``
    must still be ruled out), so each negated pair also acts as a
    disequality — mirroring the paper's "negations over the free
    variables" semantics on loop-free graphs.
    """
    # Pass 1 — negations via inclusion–exclusion over asserted subsets.
    negated = sorted(map(tuple, query.negated_atoms), key=repr)
    # Negated pairs must also be distinct (see docstring).
    disequalities = set(query.disequalities) | set(query.negated_atoms)

    signed_bases: list[tuple[int, ConjunctiveQuery]] = []
    for size in range(len(negated) + 1):
        for asserted in combinations(negated, size):
            signed_bases.append(
                ((-1) ** size, _with_extra_atoms(query.base, asserted)),
            )

    # Pass 2 — disequalities by inclusion–exclusion over the constraint
    # pairs ("pair equal" events): for the event family {A_p : p ∈ D},
    # |Ans with no A_p| = Σ_{S ⊆ D} (−1)^{|S|} |Ans(query with S merged)|.
    # Merging is transitive (union-find); a merge that collapses an
    # asserted atom yields a self-loop, hence zero answers, matching the
    # unsatisfiable event intersection.
    free = sorted(query.base.free_variables, key=repr)
    terms: list[tuple[Fraction, ConjunctiveQuery]] = []
    disequality_list = sorted(map(tuple, disequalities), key=repr)
    for sign, base in signed_bases:
        for size in range(len(disequality_list) + 1):
            for merged in combinations(disequality_list, size):
                blocks = _merge_blocks(free, merged)
                quotient = _quotient_query_by_partition(base, blocks)
                if quotient is None:
                    continue
                terms.append(
                    (Fraction(sign * (-1) ** size), quotient),
                )
    return QuantumQuery(terms)


def _merge_blocks(
    free: list,
    merged_pairs: tuple,
) -> list[list]:
    """Union-find the free variables along the merged pairs."""
    parent = {x: x for x in free}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for u, v in merged_pairs:
        root_u, root_v = find(u), find(v)
        if root_u != root_v:
            parent[root_u] = root_v
    blocks: dict = {}
    for x in free:
        blocks.setdefault(find(x), []).append(x)
    return list(blocks.values())


def count_extended_answers_via_quantum(
    query: ExtendedQuery,
    target: Graph,
) -> int:
    """Evaluate the quantum expansion (must coincide with the direct
    filter semantics — asserted in tests)."""
    value = extended_to_quantum(query).count_answers(target)
    if value.denominator != 1:
        raise AssertionError("extended answer counts must be integers")
    return int(value)


def extended_wl_dimension(query: ExtendedQuery) -> int:
    """Corollary 5 applied to the expansion: WL-dimension = hsew."""
    quantum = extended_to_quantum(query)
    if quantum.is_zero():
        return 1  # the identically-zero parameter is 1-WL-invariant
    return quantum.wl_dimension()
