"""Extension graphs, extension width, and ℓ-copies (Definitions 11-14).

* ``Γ(H, X)`` adds an edge between free variables ``u ≠ v`` whenever some
  connected component of ``H[Y]`` is adjacent to both — the "virtual
  cliques" that existential islands induce on their attachment sets.
* ``ew(H, X) = tw(Γ(H, X))`` (Definition 11).
* ``sew(H, X)`` = extension width of the counting-minimal representative
  (Definition 12) — the quantity Theorem 1 equates with the WL-dimension.
* ``F_ℓ(H, X)`` clones every quantified variable ℓ times (Definition 13);
  Corollary 18 characterises ``ew`` as ``max_ℓ tw(F_ℓ)``.
"""

from __future__ import annotations

from repro.graphs.graph import Graph, Vertex
from repro.queries.query import ConjunctiveQuery
from repro.treewidth.exact import treewidth


def extension_graph(query: ConjunctiveQuery) -> Graph:
    """``Γ(H, X)`` (Definition 11)."""
    gamma = query.graph.copy()
    free = query.free_variables
    for component in query.quantified_components():
        attachment = sorted(query.component_attachment(component), key=repr)
        for i, u in enumerate(attachment):
            for v in attachment[i + 1:]:
                if not gamma.has_edge(u, v):
                    gamma.add_edge(u, v)
    del free
    return gamma


def extension_width(query: ConjunctiveQuery) -> int:
    """``ew(H, X) = tw(Γ(H, X))``."""
    return treewidth(extension_graph(query))


def contract_graph(query: ConjunctiveQuery) -> Graph:
    """The *contract* ``Γ(H,X)[X]`` used in Corollary 4's proof
    (Dell–Roth–Wellnitz, Definition 8 there)."""
    return extension_graph(query).induced_subgraph(query.free_variables)


def semantic_extension_width(query: ConjunctiveQuery) -> int:
    """``sew(H, X)`` (Definition 12): ew of the counting-minimal core."""
    from repro.queries.minimality import counting_minimal_core

    return extension_width(counting_minimal_core(query))


def ell_copy(
    query: ConjunctiveQuery,
    ell: int,
) -> tuple[Graph, dict[Vertex, Vertex]]:
    """``F_ℓ(H, X)`` and the natural homomorphism ``γ : F_ℓ → H``
    (Definitions 13-14).

    Vertices: ``X ∪ (Y × [ℓ])`` with ``(y, i)`` the i-th clone of ``y``.
    Edges:   X-X edges kept; X-Y edges to every clone; Y-Y edges within
    each copy index only.
    """
    if ell < 1:
        raise ValueError("ell must be a positive integer")
    free = query.free_variables
    quantified = query.quantified_variables

    result = Graph(vertices=list(free))
    gamma: dict[Vertex, Vertex] = {x: x for x in free}
    for y in quantified:
        for i in range(1, ell + 1):
            clone = (y, i)
            result.add_vertex(clone)
            gamma[clone] = y

    for u, v in query.graph.edges():
        u_free = u in free
        v_free = v in free
        if u_free and v_free:
            result.add_edge(u, v)
        elif u_free and not v_free:
            for i in range(1, ell + 1):
                result.add_edge(u, (v, i))
        elif not u_free and v_free:
            for i in range(1, ell + 1):
                result.add_edge((u, i), v)
        else:
            for i in range(1, ell + 1):
                result.add_edge((u, i), (v, i))
    return result, gamma


def gamma_map(query: ConjunctiveQuery, ell: int) -> dict[Vertex, Vertex]:
    """Just the γ homomorphism of Definition 14."""
    return ell_copy(query, ell)[1]


def extension_width_via_ell_copies(
    query: ConjunctiveQuery,
    max_ell: int | None = None,
) -> int:
    """``ew(H, X) = max_ℓ tw(F_ℓ(H, X))`` (Corollary 18).

    Lemma 17's proof shows saturation by ``ℓ = |V(H)| + 2``; we sweep up to
    that bound (or ``max_ell``).  Used as a cross-check of
    :func:`extension_width` in tests and experiment E1.
    """
    bound = max_ell if max_ell is not None else query.num_variables() + 2
    best = 0
    for ell in range(1, bound + 1):
        best = max(best, treewidth(ell_copy(query, ell)[0]))
    return best


def saturating_odd_ell(query: ConjunctiveQuery, width: int | None = None) -> int:
    """Smallest odd ℓ with ``tw(F_ℓ) = ew(H, X)`` — the parameter the
    lower-bound witness construction needs (Theorem 24's proof requires an
    odd ℓ achieving the maximum)."""
    target = width if width is not None else extension_width(query)
    bound = query.num_variables() + 3
    ell = 1
    while ell <= bound:
        if treewidth(ell_copy(query, ell)[0]) >= target:
            return ell
        ell += 2
    raise AssertionError(
        "no saturating odd ell within the Lemma 17 bound — this contradicts "
        "Corollary 18 and indicates a bug",
    )
