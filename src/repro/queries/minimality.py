"""Counting equivalence and counting-minimal cores (Definition 9, Lemma 44).

Two queries are *counting equivalent* when they have the same number of
answers in every graph.  Each equivalence class has a unique (up to query
isomorphism) minimal representative w.r.t. subgraphs — the *counting core*.

The core is computed by image-shrinking retractions: an endomorphism
``h : H → H`` whose restriction to ``X`` is a bijection ``X → X`` and whose
image is a proper subset of ``V(H)`` witnesses that ``(H[h(V)], X)`` is
counting equivalent to ``(H, X)`` (composing answers' extensions with ``h``
is a bijection on answer sets up to the ``X``-permutation ``h|X``).
Iterating to a fixpoint yields a query in which every ``X``-bijective
endomorphism is an automorphism — exactly the property Lemma 44 states for
counting-minimal queries.
"""

from __future__ import annotations

from typing import Iterator

from repro.graphs.graph import Graph, Vertex
from repro.homs.brute_force import enumerate_homomorphisms
from repro.queries.query import ConjunctiveQuery


def _x_bijective_endomorphisms(
    query: ConjunctiveQuery,
) -> Iterator[dict[Vertex, Vertex]]:
    """Endomorphisms of ``H`` mapping ``X`` bijectively onto ``X``."""
    free = query.free_variables
    allowed = {x: frozenset(free) for x in free}
    for endo in enumerate_homomorphisms(query.graph, query.graph, allowed=allowed):
        image_of_free = {endo[x] for x in free}
        if len(image_of_free) == len(free):
            yield endo


def _shrinking_endomorphism(
    query: ConjunctiveQuery,
) -> dict[Vertex, Vertex] | None:
    """An ``X``-bijective endomorphism with a strictly smaller image, if any."""
    total = query.num_variables()
    for endo in _x_bijective_endomorphisms(query):
        if len(set(endo.values())) < total:
            return endo
    return None


def counting_minimal_core(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """The counting-minimal representative of ``query``'s equivalence class.

    The result has the same free-variable set ``X`` (as labels) and an
    induced subgraph of the original ``H`` as its graph.
    """
    current = query
    while True:
        endo = _shrinking_endomorphism(current)
        if endo is None:
            return current
        image = set(endo.values())
        current = ConjunctiveQuery(
            current.graph.induced_subgraph(image),
            current.free_variables,
        )


def is_counting_minimal(query: ConjunctiveQuery) -> bool:
    """No ``X``-bijective endomorphism shrinks the image (Lemma 44's
    characterisation)."""
    return _shrinking_endomorphism(query) is None


def counting_equivalent(first: ConjunctiveQuery, second: ConjunctiveQuery) -> bool:
    """Counting equivalence (Definition 9): minimal cores are isomorphic.

    Uses the classification of Chen–Mengel / Dell–Roth–Wellnitz that
    counting-minimal representatives are unique up to query isomorphism.
    """
    return counting_minimal_core(first).is_isomorphic_to(
        counting_minimal_core(second),
    )


def empirical_counting_equivalent(
    first: ConjunctiveQuery,
    second: ConjunctiveQuery,
    targets: list[Graph],
) -> bool:
    """Direct check of Definition 9 on a finite battery of target graphs —
    a necessary condition used to sanity-test :func:`counting_equivalent`."""
    from repro.queries.answers import count_answers

    return all(
        count_answers(first, target) == count_answers(second, target)
        for target in targets
    )
