"""Textual syntax for conjunctive queries.

Two equivalent forms are accepted:

Datalog style
    ``q(x1, x2) :- E(x1, y), E(x2, y)``

Logic style
    ``(x1, x2) exists y : E(x1, y) & E(x2, y)``
    (``&``, ``,`` and ``∧`` all separate atoms; ``exists``/``∃`` introduces
    the quantified variables, and may be omitted when there are none)

Head variables are the free variables; every variable that appears only in
the body is existentially quantified.  The relation symbol must be ``E`` or
``edge`` (case-insensitive) — the paper's setting has a single binary edge
relation.
"""

from __future__ import annotations

import re

from repro.errors import ParseError
from repro.queries.query import ConjunctiveQuery, query_from_atoms

_ATOM_PATTERN = re.compile(
    r"(?P<rel>[A-Za-z_][A-Za-z_0-9]*)\s*\(\s*(?P<u>[A-Za-z_0-9']+)\s*,\s*(?P<v>[A-Za-z_0-9']+)\s*\)",
)
_HEAD_PATTERN = re.compile(
    r"^\s*(?:[A-Za-z_][A-Za-z_0-9]*)?\s*\(\s*(?P<vars>[^)]*)\s*\)\s*$",
)


def _parse_variable_list(text: str) -> list[str]:
    text = text.strip()
    if not text:
        return []
    return [token.strip() for token in text.split(",") if token.strip()]


def _parse_atoms(body: str) -> list[tuple[str, str]]:
    atoms: list[tuple[str, str]] = []
    consumed_spans: list[tuple[int, int]] = []
    for match in _ATOM_PATTERN.finditer(body):
        relation = match.group("rel").lower()
        if relation not in ("e", "edge"):
            raise ParseError(
                f"unknown relation {match.group('rel')!r}; only E/edge is supported",
            )
        u, v = match.group("u"), match.group("v")
        if u == v:
            raise ParseError(f"atom E({u}, {v}) would be a self-loop")
        atoms.append((u, v))
        consumed_spans.append(match.span())

    # Everything outside atoms must be separators.
    leftovers = []
    cursor = 0
    for start, end in consumed_spans:
        leftovers.append(body[cursor:start])
        cursor = end
    leftovers.append(body[cursor:])
    residue = "".join(leftovers)
    residue = re.sub(r"[\s,&∧]+", "", residue)
    residue = residue.replace("and", "")
    if residue:
        raise ParseError(f"unparsed query text: {residue!r}")
    return atoms


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a conjunctive query from either accepted syntax."""
    text = text.strip()
    if not text:
        raise ParseError("empty query text")

    if ":-" in text:
        head_text, body_text = text.split(":-", 1)
        head_match = _HEAD_PATTERN.match(head_text)
        if head_match is None:
            raise ParseError(f"malformed datalog head {head_text!r}")
        free = _parse_variable_list(head_match.group("vars"))
        existential: list[str] = []
    else:
        # logic style: "(x1, x2) [exists y1, y2 :] atoms"
        if not text.startswith("("):
            raise ParseError(
                "logic-style queries must start with the free-variable tuple",
            )
        close = text.index(")")
        free = _parse_variable_list(text[1:close])
        body_text = text[close + 1:].strip()
        existential = []
        quant_match = re.match(
            r"^(exists|∃)\s+(?P<vars>[^:]*):",
            body_text,
            flags=re.IGNORECASE,
        )
        if quant_match:
            existential = _parse_variable_list(quant_match.group("vars"))
            body_text = body_text[quant_match.end():]

    atoms = _parse_atoms(body_text)
    mentioned = {u for u, _ in atoms} | {v for _, v in atoms}
    if existential:
        undeclared = mentioned - set(free) - set(existential)
        if undeclared:
            raise ParseError(
                f"variables {sorted(undeclared)!r} are neither free nor quantified",
            )
    missing_free = set(free) - mentioned
    # Isolated free variables are permitted (they just multiply answer counts
    # by |V(G)|), but we must declare them explicitly as vertices.
    return query_from_atoms(atoms, free, extra_variables=sorted(missing_free))


def parse_union_query(text: str) -> list[ConjunctiveQuery]:
    """Parse a union of conjunctive queries, disjuncts separated by ``;``.

    All disjuncts must use the same free-variable names (the UCQ
    convention); the result feeds
    :func:`repro.core.quantum.union_to_quantum`.
    """
    disjuncts = [part.strip() for part in text.split(";") if part.strip()]
    if not disjuncts:
        raise ParseError("empty union")
    queries = [parse_query(part) for part in disjuncts]
    free_names = {frozenset(map(str, q.free_variables)) for q in queries}
    if len(free_names) != 1:
        raise ParseError(
            "all disjuncts of a union must share the same free variables; "
            f"got {sorted(map(sorted, free_names))}",
        )
    return queries


def format_query(query: ConjunctiveQuery, style: str = "logic") -> str:
    """Render a query in ``'logic'`` or ``'datalog'`` style."""
    if style == "logic":
        return query.to_logic_string()
    if style == "datalog":
        free = ", ".join(str(x) for x in sorted(query.free_variables, key=repr))
        atoms = ", ".join(
            f"E({u}, {v})"
            for u, v in sorted(query.graph.edges(), key=lambda e: (repr(e[0]), repr(e[1])))
        )
        return f"q({free}) :- {atoms}" if atoms else f"q({free}) :-"
    raise ValueError(f"unknown style {style!r}")
