"""Quantified star size (Durand–Mengel, ICDT 2013).

The *star size* of a component ``C`` of ``H[Y]`` is ``|N(C) ∩ X|`` — the
number of free variables it attaches to.  The quantified star size of
``(H, X)`` is the maximum over components; the *semantic* variant is taken
on the counting-minimal core.

The paper describes ``sew`` as "a combination of the treewidth of ϕ and its
quantified star size": every attachment set becomes a clique of ``Γ(H, X)``,
so ``ew ≥ star size − 1``, and for the k-star query the bound is tight
(``sew(S_k, X_k) = k``).  Those relations are asserted in the tests.
"""

from __future__ import annotations

from repro.queries.minimality import counting_minimal_core
from repro.queries.query import ConjunctiveQuery


def quantified_star_size(query: ConjunctiveQuery) -> int:
    """``max_C |N(C) ∩ X|`` over components ``C`` of ``H[Y]`` (0 if full)."""
    sizes = [
        len(query.component_attachment(component))
        for component in query.quantified_components()
    ]
    return max(sizes, default=0)


def semantic_quantified_star_size(query: ConjunctiveQuery) -> int:
    """Quantified star size of the counting-minimal core."""
    return quantified_star_size(counting_minimal_core(query))


def star_size_lower_bound_on_ew(query: ConjunctiveQuery) -> int:
    """``ew(H, X) ≥ quantified_star_size − 1``: each attachment set is a
    clique in ``Γ(H, X)`` and cliques force treewidth."""
    return max(quantified_star_size(query) - 1, 0)
