"""Query families used in the paper and in the experiments.

The k-star query (Definition 66) is the running example: acyclic
(treewidth 1) yet of semantic extension width ``k``, witnessing that
treewidth alone does not govern the WL-dimension (Corollary 61).
"""

from __future__ import annotations

import random

from repro.errors import QueryError
from repro.graphs.graph import Graph
from repro.queries.query import ConjunctiveQuery, query_from_atoms


def star_query(k: int) -> ConjunctiveQuery:
    """The k-star ``(S_k, X_k)``: free ``x1..xk`` sharing a quantified
    neighbour ``y`` (Definition 66).  ``sew = k``."""
    if k < 1:
        raise QueryError("star queries need k >= 1")
    atoms = [(f"x{i}", "y") for i in range(1, k + 1)]
    return query_from_atoms(atoms, [f"x{i}" for i in range(1, k + 1)])


def path_query(num_vertices: int, num_free_prefix: int) -> ConjunctiveQuery:
    """A path ``v1 - v2 - … - vn`` with the first ``num_free_prefix``
    vertices free.  Treewidth 1; extension width depends on how the
    quantified suffix attaches."""
    if not 0 <= num_free_prefix <= num_vertices:
        raise QueryError("free prefix must be between 0 and the path length")
    atoms = [(f"v{i}", f"v{i+1}") for i in range(1, num_vertices)]
    free = [f"v{i}" for i in range(1, num_free_prefix + 1)]
    return query_from_atoms(atoms, free, extra_variables=["v1"] if num_vertices == 1 else ())


def path_endpoints_query(internal: int) -> ConjunctiveQuery:
    """Two free endpoints joined by a path of ``internal`` quantified
    vertices: "are the images at walk-distance internal+1?"."""
    total = internal + 2
    atoms = [(f"v{i}", f"v{i+1}") for i in range(1, total)]
    return query_from_atoms(atoms, ["v1", f"v{total}"])


def cycle_query(length: int, num_free: int) -> ConjunctiveQuery:
    """A cycle of given length with a contiguous block of free variables."""
    if length < 3:
        raise QueryError("cycles need length >= 3")
    if not 0 <= num_free <= length:
        raise QueryError("num_free out of range")
    atoms = [(f"v{i}", f"v{(i % length) + 1}") for i in range(1, length + 1)]
    return query_from_atoms(atoms, [f"v{i}" for i in range(1, num_free + 1)])


def clique_query(size: int, num_free: int) -> ConjunctiveQuery:
    """A clique with a chosen number of free variables."""
    if not 0 <= num_free <= size:
        raise QueryError("num_free out of range")
    atoms = [
        (f"v{i}", f"v{j}")
        for i in range(1, size + 1)
        for j in range(i + 1, size + 1)
    ]
    return query_from_atoms(atoms, [f"v{i}" for i in range(1, num_free + 1)])


def full_query_from_graph(graph: Graph) -> ConjunctiveQuery:
    """The full CQ of a graph: ``X = V(H)``, so answers = homomorphisms."""
    return ConjunctiveQuery(graph, graph.vertices())


def boolean_query_from_graph(graph: Graph) -> ConjunctiveQuery:
    """The Boolean CQ of a graph: ``X = ∅``."""
    return ConjunctiveQuery(graph, ())


def double_star_query(left: int, right: int) -> ConjunctiveQuery:
    """Two stars whose centres are adjacent quantified variables: ``left``
    free leaves on one centre, ``right`` on the other.  Exercises multiple
    components of Γ-cliques through a single H[Y] component."""
    atoms = [("yL", "yR")]
    atoms += [(f"a{i}", "yL") for i in range(1, left + 1)]
    atoms += [(f"b{i}", "yR") for i in range(1, right + 1)]
    free = [f"a{i}" for i in range(1, left + 1)] + [
        f"b{i}" for i in range(1, right + 1)
    ]
    return query_from_atoms(atoms, free)


def star_with_redundant_triangle(k: int) -> ConjunctiveQuery:
    """A k-star with a quantified triangle attached to the centre.

    The triangle admits no homomorphism into the bipartite star, so —
    unlike the pendant path of :func:`star_with_redundant_path` — it
    *survives* counting minimisation.  Useful as a counting-minimal,
    non-acyclic companion to the plain star in the width tests.
    """
    base = star_query(k)
    graph = base.graph.copy()
    graph.add_edge("y", "t1")
    graph.add_edge("t1", "t2")
    graph.add_edge("t2", "t3")
    graph.add_edge("t3", "t1")
    return ConjunctiveQuery(graph, base.free_variables)


def star_with_redundant_path(k: int, tail: int = 2) -> ConjunctiveQuery:
    """A k-star with a quantified pendant path of length ``tail`` hanging
    off the centre.  The path folds back onto the star (map each path
    vertex alternately to a leaf's image/centre), so the counting core is
    the plain k-star: ``sew = k`` even though the raw query looks bigger.

    This is the canonical example of ``sew < ew``-style redundancy used in
    the minimality tests (the paper's remark after Theorem 1 that ``H[Y]``
    may contain parts that do not influence the answer count).
    """
    base = star_query(k)
    graph = base.graph.copy()
    previous = "y"
    for i in range(1, tail + 1):
        graph.add_edge(previous, f"p{i}")
        previous = f"p{i}"
    return ConjunctiveQuery(graph, base.free_variables)


def random_query(
    num_variables: int,
    num_free: int,
    edge_probability: float,
    seed: int | None = None,
    connected: bool = True,
) -> ConjunctiveQuery:
    """A random connected conjunctive query for property-based tests."""
    if not 0 <= num_free <= num_variables:
        raise QueryError("num_free out of range")
    rng = random.Random(seed)
    names = [f"v{i}" for i in range(num_variables)]
    graph = Graph(vertices=names)
    # Spanning tree for connectivity, then extra random atoms.
    if connected:
        for i in range(1, num_variables):
            graph.add_edge(names[i], names[rng.randrange(i)])
    for i in range(num_variables):
        for j in range(i + 1, num_variables):
            if not graph.has_edge(names[i], names[j]) and rng.random() < edge_probability:
                graph.add_edge(names[i], names[j])
    free = rng.sample(names, num_free)
    return ConjunctiveQuery(graph, free)
