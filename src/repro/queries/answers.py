"""Counting and enumerating answers to conjunctive queries.

``Ans((H, X), G)`` is the set of assignments ``a : X → V(G)`` extendable to
a homomorphism ``H → G`` (Definition 8).  Three counting routes:

1. brute force — enumerate candidate assignments, check extendability by
   backtracking (the reference implementation);
2. projection — enumerate all homomorphisms and project to ``X`` (fast when
   ``Hom`` is small);
3. interpolation (Lemma 22 / Observation 23) — recover ``|Ans|`` from the
   homomorphism counts ``|Hom(F_ℓ(H,X), G)|``, which are power sums
   ``p_ℓ = Σ_σ |Ext(σ)|^ℓ`` over the answers ``σ``.  The adaptive solver
   finds the distinct extension-set sizes via exact Hankel-rank detection
   (Prony's method over ℚ) and reads off ``|Ans|`` as the sum of
   multiplicities.  This is the computational content of the paper's upper
   bound: answers are a finite linear combination of homomorphism counts
   from graphs of treewidth ≤ ew(H, X).

Colour-restricted answer sets (Definition 36: ``Ans_τ``) and
colour-prescribed answers (Definition 48: ``cpAns``) are also provided; they
drive the lower-bound experiments.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Iterator, Mapping

from repro.errors import QueryError
from repro.graphs.graph import Graph, Vertex
from repro.homs.brute_force import (
    count_homomorphisms_brute,
    enumerate_homomorphisms,
    exists_homomorphism,
)
from repro.homs.counting import count_homomorphisms
from repro.queries.extension import ell_copy, gamma_map
from repro.queries.query import ConjunctiveQuery
from repro.utils import matrix_rank_exact, solve_linear_system_exact

Assignment = dict[Vertex, Vertex]


# ----------------------------------------------------------------------
# direct enumeration
# ----------------------------------------------------------------------
def enumerate_answers(
    query: ConjunctiveQuery,
    target: Graph,
    allowed: Mapping[Vertex, frozenset] | None = None,
) -> Iterator[Assignment]:
    """Yield every answer ``a : X → V(G)``, optionally restricted to
    ``a(x) ∈ allowed[x]``.

    The extension check reuses the homomorphism backtracker with the answer
    as a fixed partial assignment.
    """
    free = sorted(query.free_variables, key=repr)
    if not free:
        # Boolean query: the single empty assignment is an answer iff a
        # homomorphism exists.
        if exists_homomorphism(query.graph, target):
            yield {}
        return

    domains = []
    for x in free:
        pool = target.vertices()
        if allowed is not None and x in allowed:
            pool = [w for w in pool if w in allowed[x]]
        domains.append(pool)

    for images in product(*domains):
        assignment = dict(zip(free, images))
        if exists_homomorphism(query.graph, target, fixed=assignment):
            yield assignment


def count_answers_direct(query: ConjunctiveQuery, target: Graph) -> int:
    """``|Ans((H, X), G)|`` by direct enumeration (the reference route)."""
    return sum(1 for _ in enumerate_answers(query, target))


def count_answers(query: ConjunctiveQuery, target: Graph) -> int:
    """``|Ans((H, X), G)|`` by direct enumeration.

    A thin shim over the task API — equivalent to running
    ``AnswerCountTask(query, target, method='direct')`` on the default
    session — so this entry point, the service, and the dynamic layer all
    share one execution route.
    """
    from repro.api.session import default_session

    return default_session().run_answer_count(query, target, method="direct")


def count_answers_by_projection(query: ConjunctiveQuery, target: Graph) -> int:
    """``|Ans|`` as the number of distinct projections of homomorphisms."""
    free = sorted(query.free_variables, key=repr)
    projections = {
        tuple(hom[x] for x in free)
        for hom in enumerate_homomorphisms(query.graph, target)
    }
    return len(projections)


# ----------------------------------------------------------------------
# colour-restricted answers (Definitions 36 and 48)
# ----------------------------------------------------------------------
def count_answers_tau(
    query: ConjunctiveQuery,
    target: Graph,
    colouring: Mapping[Vertex, Vertex],
    tau: Mapping[Vertex, Vertex],
) -> int:
    """``|Ans_τ((H,X), (G, c))|``: answers with ``c(a(x)) = τ(x)`` on ``X``.

    Only the *answer* is colour-constrained; extensions are free
    (Definition 36, first form).
    """
    classes: dict[Vertex, set[Vertex]] = {}
    for w in target.vertices():
        classes.setdefault(colouring[w], set()).add(w)
    allowed = {
        x: frozenset(classes.get(tau[x], ())) for x in query.free_variables
    }
    return sum(1 for _ in enumerate_answers(query, target, allowed=allowed))


def count_answers_id(
    query: ConjunctiveQuery,
    target: Graph,
    colouring: Mapping[Vertex, Vertex],
) -> int:
    """``|Ans_id|``: answers with ``c(a(x)) = x`` for every free ``x``."""
    identity = {x: x for x in query.free_variables}
    return count_answers_tau(query, target, colouring, identity)


def enumerate_cp_answers(
    query: ConjunctiveQuery,
    target: Graph,
    colouring: Mapping[Vertex, Vertex],
) -> Iterator[Assignment]:
    """``cpAns((H,X),(G,c))`` (Definition 48): projections of
    colour-*prescribed* homomorphisms (every variable lands in its own
    colour class)."""
    classes: dict[Vertex, set[Vertex]] = {}
    for w in target.vertices():
        classes.setdefault(colouring[w], set()).add(w)
    allowed = {
        v: frozenset(classes.get(v, ())) for v in query.graph.vertices()
    }
    free = sorted(query.free_variables, key=repr)
    seen: set[tuple] = set()
    for hom in enumerate_homomorphisms(query.graph, target, allowed=allowed):
        key = tuple(hom[x] for x in free)
        if key not in seen:
            seen.add(key)
            yield {x: hom[x] for x in free}


def count_cp_answers(
    query: ConjunctiveQuery,
    target: Graph,
    colouring: Mapping[Vertex, Vertex],
) -> int:
    """``|cpAns((H,X), (G, c))|``."""
    return sum(1 for _ in enumerate_cp_answers(query, target, colouring))


# ----------------------------------------------------------------------
# extension profiles and interpolation (Lemma 22)
# ----------------------------------------------------------------------
def extension_counts(query: ConjunctiveQuery, target: Graph) -> list[int]:
    """For each answer ``σ``, the size ``|Ext(σ)|`` of its extension set.

    ``Ext(σ) = {ρ : Y → V(G) | σ ∪ ρ ∈ Hom(H, G)}`` — the quantities whose
    power sums the interpolation argument manipulates.
    """
    counts: list[int] = []
    for answer in enumerate_answers(query, target):
        extensions = count_homomorphisms_brute(
            query.graph, target, fixed=answer,
        )
        counts.append(extensions)
    return counts


def hom_count_of_ell_copy(
    query: ConjunctiveQuery,
    target: Graph,
    ell: int,
    method: str = "auto",
) -> int:
    """``p_ℓ = |Hom(F_ℓ(H, X), G)|``.

    With ``method='auto'`` this rides the engine: ``F_ℓ`` is rebuilt per
    call but carries identical labels, so its compiled plan and any
    previously computed ``p_ℓ`` for the same target come from cache — the
    interpolation solver probes the same prefix of power sums repeatedly.
    """
    pattern, _ = ell_copy(query, ell)
    return count_homomorphisms(pattern, target, method=method)


def power_sum_vector(
    query: ConjunctiveQuery,
    target: Graph,
    max_ell: int,
    method: str = "auto",
) -> tuple[int, ...]:
    """``(p_1, …, p_{max_ell})`` — the power-sum profile Lemma 22 consumes,
    evaluated as one batch so every ``F_ℓ`` plan is compiled at most once."""
    return tuple(
        hom_count_of_ell_copy(query, target, ell, method=method)
        for ell in range(1, max_ell + 1)
    )


def _hankel_rank(power_sums: list[int], dimension: int) -> int:
    """Rank of the Hankel matrix ``[p_{1+i+j}]_{i,j < dimension}``."""
    matrix = [
        [power_sums[i + j] for j in range(dimension)] for i in range(dimension)
    ]
    return matrix_rank_exact(matrix)


def count_answers_by_interpolation(
    query: ConjunctiveQuery,
    target: Graph,
    method: str = "auto",
    max_distinct: int | None = None,
) -> int:
    """``|Ans|`` from homomorphism counts of ℓ-copies alone (Lemma 22).

    The solver half lives in :func:`count_answers_from_power_sums`; this
    wrapper feeds it the engine-backed power sums of ``(query, target)``.
    """
    if query.is_full():
        # No existential variables: answers are homomorphisms.
        return count_homomorphisms(query.graph, target, method=method)
    if not query.free_variables:
        raise QueryError(
            "interpolation requires at least one free variable; Boolean "
            "queries reduce to homomorphism existence",
        )
    return count_answers_from_power_sums(
        lambda ell: hom_count_of_ell_copy(query, target, ell, method=method),
        max_distinct=max_distinct,
    )


def count_answers_from_power_sums(
    fetch,
    max_distinct: int | None = None,
) -> int:
    """``|Ans|`` from the power sums ``p_ℓ`` alone (Lemma 22, solver half).

    ``fetch(ℓ)`` must return ``p_ℓ = |Hom(F_ℓ(H, X), G)| = Σ_σ |Ext(σ)|^ℓ``;
    it is called for ``ℓ = 1, 2, …`` as needed.  Writes
    ``p_ℓ = Σ_i m_i x_i^ℓ`` with distinct extension sizes ``x_i ≥ 1`` and
    multiplicities ``m_i ≥ 1``, then:

    1. find ``d`` = number of distinct sizes via exact Hankel rank;
    2. recover the sizes as the integer roots of the Prony polynomial;
    3. solve a Vandermonde system for the multiplicities;
    4. ``|Ans| = Σ_i m_i``.

    Every step is exact rational arithmetic.  ``max_distinct`` caps step 1
    (default: a bound implied by ``p_1``).  Decoupling the solver from the
    power-sum source lets the dynamic layer interpolate over *maintained*
    homomorphism counts instead of fresh ones.
    """
    p1 = fetch(1)
    if p1 == 0:
        return 0
    # Each answer contributes x_i >= 1 to p1, so there are at most p1
    # answers and at most p1 distinct sizes.
    cap = p1 if max_distinct is None else min(max_distinct, p1)

    power_sums = [p1]

    def extend_to(length: int) -> None:
        while len(power_sums) < length:
            power_sums.append(fetch(len(power_sums) + 1))

    distinct = None
    for d in range(1, cap + 1):
        extend_to(2 * d)
        if _hankel_rank(power_sums, d) < d:
            distinct = d - 1
            break
    if distinct is None:
        distinct = cap

    if distinct == 0:
        return 0

    extend_to(2 * distinct)
    # Prony: find the monic polynomial λ^d - c_{d-1} λ^{d-1} - … - c_0 whose
    # roots are the distinct sizes; coefficients solve a Hankel system.
    if distinct == 1:
        # p2/p1 = x; guard against needing p2 when d == 1.
        extend_to(2)
        size = Fraction(power_sums[1], power_sums[0])
        if size.denominator != 1:
            raise AssertionError("extension sizes must be integers")
        multiplicity = Fraction(power_sums[0], size)
        if multiplicity.denominator != 1:
            raise AssertionError("multiplicities must be integers")
        return int(multiplicity)

    matrix = [
        [power_sums[i + j] for j in range(distinct)] for i in range(distinct)
    ]
    rhs = [power_sums[distinct + i] for i in range(distinct)]
    coefficients = solve_linear_system_exact(matrix, rhs)

    def poly(value: int) -> Fraction:
        total = Fraction(value) ** distinct
        for j, coefficient in enumerate(coefficients):
            total -= coefficient * Fraction(value) ** j
        return total

    roots = [x for x in range(1, p1 + 1) if poly(x) == 0]
    if len(roots) != distinct:
        raise AssertionError(
            f"expected {distinct} integer roots, found {len(roots)}",
        )

    vandermonde = [[Fraction(x) ** ell for x in roots] for ell in range(1, distinct + 1)]
    multiplicities = solve_linear_system_exact(
        vandermonde, power_sums[:distinct],
    )
    total = Fraction(0)
    for multiplicity in multiplicities:
        if multiplicity.denominator != 1 or multiplicity < 0:
            raise AssertionError("multiplicities must be non-negative integers")
        total += multiplicity
    return int(total)


def hom_combination_for_answers(
    query: ConjunctiveQuery,
    target: Graph,
) -> list[tuple[Fraction, int]]:
    """Observation 23, literally: weights ``w_ℓ`` with
    ``|Ans((H,X), G)| = Σ_ℓ w_ℓ · |Hom(F_ℓ(H,X), G)|``.

    With distinct extension sizes ``x_1 < … < x_d`` (recovered as in
    :func:`count_answers_by_interpolation`), the weights solve
    ``Σ_ℓ w_ℓ x^ℓ = 1`` for every ``x = x_i`` — a transposed Vandermonde
    system over ``ℓ = 1..d``.  Since the ``F_ℓ`` have treewidth ≤ ew(H,X)
    (Lemma 16), this exhibits the answer count as a finite rational
    combination of bounded-treewidth homomorphism counts — the upper-bound
    mechanism of Theorem 21 and the GNN result.

    Returns ``[(w_1, 1), …, (w_d, d)]``; empty when there are no answers.
    """
    if not query.free_variables:
        raise QueryError("Observation 23 requires at least one free variable")
    profile = sorted(set(extension_counts(query, target)))
    if not profile:
        return []
    matrix = [[Fraction(x) ** ell for ell in range(1, len(profile) + 1)] for x in profile]
    weights = solve_linear_system_exact(matrix, [1] * len(profile))
    return [(weight, ell) for ell, weight in enumerate(weights, start=1)]


def evaluate_hom_combination(
    query: ConjunctiveQuery,
    target: Graph,
    combination: list[tuple[Fraction, int]],
) -> Fraction:
    """``Σ_ℓ w_ℓ |Hom(F_ℓ, G)|`` for a combination from
    :func:`hom_combination_for_answers`."""
    total = Fraction(0)
    for weight, ell in combination:
        total += weight * hom_count_of_ell_copy(query, target, ell)
    return total


def power_sum_identity_check(
    query: ConjunctiveQuery,
    target: Graph,
    max_ell: int,
) -> bool:
    """Verify ``|Hom(F_ℓ, G)| = Σ_σ |Ext(σ)|^ℓ`` for ``ℓ = 1..max_ell`` —
    the identity at the heart of Lemma 22."""
    profile = extension_counts(query, target)
    for ell in range(1, max_ell + 1):
        direct = hom_count_of_ell_copy(query, target, ell)
        predicted = sum(size ** ell for size in profile)
        if direct != predicted:
            return False
    return True


def answers_of_gamma_colouring(
    query: ConjunctiveQuery,
    target: Graph,
    f_colouring: Mapping[Vertex, Vertex],
    ell: int,
    tau: Mapping[Vertex, Vertex],
) -> int:
    """``|Ans_τ((H,X),(G, ĉ))|`` for an F-colouring ĉ (Definition 36, second
    form): the answer colour is read through ``γ ∘ ĉ``."""
    _, gamma = ell_copy(query, ell)
    composed = {w: gamma[f_colouring[w]] for w in target.vertices()}
    return count_answers_tau(query, target, composed, tau)


def gamma_pi_colouring(
    query: ConjunctiveQuery,
    ell: int,
    cfi: Graph,
) -> dict[Vertex, Vertex]:
    """The H-colouring ``c = γ(π₁(·))`` of a CFI graph over ``F_ℓ(H, X)``
    (Observation 39)."""
    _, gamma = ell_copy(query, ell)
    return {vertex: gamma[vertex[0]] for vertex in cfi.vertices()}


def gamma_of_query(query: ConjunctiveQuery, ell: int) -> dict[Vertex, Vertex]:
    """Convenience re-export of the γ map (Definition 14)."""
    return gamma_map(query, ell)
