"""Conjunctive queries on graphs (Definitions 7-9 and 42).

Following the paper, a conjunctive query is a pair ``(H, X)``: a graph ``H``
(the variables and atom structure) together with a distinguished vertex set
``X`` of *free* variables.  ``Y = V(H) \\ X`` are the existentially
quantified variables.  The logical form

``ϕ(x₁, …, x_k) = ∃ y₁, …, y_ℓ : E(z, z') ∧ …``

corresponds to edges of ``H``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import QueryError
from repro.graphs.canonical import canonical_form
from repro.graphs.graph import Graph, Vertex
from repro.graphs.isomorphism import (
    find_isomorphism_coloured,
    isomorphisms_coloured,
)


@dataclass(frozen=True)
class ConjunctiveQuery:
    """A conjunctive query ``(H, X)`` over the single edge relation ``E``.

    Instances are value-like: the constructor copies the graph, and the
    query compares/hashes by a colour-aware canonical form (isomorphism of
    queries must map free variables to free variables, Definition 8).
    """

    graph: Graph
    free_variables: frozenset
    _canonical: tuple = field(init=False, repr=False, compare=False)

    def __init__(self, graph: Graph, free_variables: Iterable[Vertex]) -> None:
        free = frozenset(free_variables)
        missing = free - set(graph.vertices())
        if missing:
            raise QueryError(f"free variables not in the graph: {missing!r}")
        object.__setattr__(self, "graph", graph.copy())
        object.__setattr__(self, "free_variables", free)
        colours = {
            v: ("free" if v in free else "bound") for v in graph.vertices()
        }
        object.__setattr__(self, "_canonical", canonical_form(graph, colours))

    # ------------------------------------------------------------------
    # basic structure
    # ------------------------------------------------------------------
    @property
    def quantified_variables(self) -> frozenset:
        """``Y = V(H) \\ X``."""
        return frozenset(set(self.graph.vertices()) - self.free_variables)

    def is_connected(self) -> bool:
        """Is ``H`` connected (Definition 7)?"""
        return self.graph.is_connected()

    def is_full(self) -> bool:
        """Full conjunctive query: no existential variables (``X = V(H)``)."""
        return not self.quantified_variables

    def is_quantifier_free(self) -> bool:
        """Alias of :meth:`is_full` using logic terminology."""
        return self.is_full()

    def is_boolean(self) -> bool:
        """No free variables (``X = ∅``): counting degenerates to deciding."""
        return not self.free_variables

    def num_variables(self) -> int:
        return self.graph.num_vertices()

    def num_atoms(self) -> int:
        return self.graph.num_edges()

    def quantified_components(self) -> list[frozenset]:
        """Connected components of ``H[Y]`` — the existential islands whose
        free-variable neighbourhoods drive the extension graph."""
        quantified = self.quantified_variables
        if not quantified:
            return []
        return self.graph.induced_subgraph(quantified).connected_components()

    def component_attachment(self, component: Iterable[Vertex]) -> frozenset:
        """``δ = N(C) ∩ X``: free variables adjacent to the component."""
        neighbours = self.graph.neighbourhood_of_set(component)
        return frozenset(neighbours & self.free_variables)

    # ------------------------------------------------------------------
    # identity
    # ------------------------------------------------------------------
    def vertex_colours(self) -> dict[Vertex, str]:
        """'free'/'bound' labels, the colouring under which query
        isomorphisms are exactly coloured graph isomorphisms."""
        return {
            v: ("free" if v in self.free_variables else "bound")
            for v in self.graph.vertices()
        }

    def is_isomorphic_to(self, other: "ConjunctiveQuery") -> bool:
        """Query isomorphism (Definition 8): isomorphism ``H₁ → H₂`` mapping
        ``X₁`` onto ``X₂``."""
        mapping = find_isomorphism_coloured(
            self.graph,
            other.graph,
            self.vertex_colours(),
            other.vertex_colours(),
        )
        return mapping is not None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self._canonical == other._canonical

    def __hash__(self) -> int:
        return hash(self._canonical)

    def canonical_key(self) -> tuple:
        """A complete isomorphism invariant of the query."""
        return self._canonical

    # ------------------------------------------------------------------
    # automorphisms (Definition 42)
    # ------------------------------------------------------------------
    def partial_automorphisms(self) -> list[dict[Vertex, Vertex]]:
        """``Aut(H, X)``: restrictions to ``X`` of automorphisms of ``H``
        that preserve ``X`` setwise.  Returned as maps ``X → X``; duplicates
        (different automorphisms with the same restriction) are removed."""
        colours = self.vertex_colours()
        seen: set[tuple] = set()
        result: list[dict[Vertex, Vertex]] = []
        for automorphism in isomorphisms_coloured(
            self.graph, self.graph, colours, colours,
        ):
            restriction = {x: automorphism[x] for x in self.free_variables}
            key = tuple(sorted(restriction.items(), key=lambda kv: repr(kv[0])))
            if key not in seen:
                seen.add(key)
                result.append(restriction)
        return result

    # ------------------------------------------------------------------
    # presentation
    # ------------------------------------------------------------------
    def to_logic_string(self) -> str:
        """Render as ``ϕ(x, …) = ∃ y, … : E(a, b) ∧ …``."""
        free = sorted(self.free_variables, key=repr)
        bound = sorted(self.quantified_variables, key=repr)
        atoms = " ∧ ".join(
            f"E({u}, {v})" for u, v in sorted(
                self.graph.edges(), key=lambda e: (repr(e[0]), repr(e[1])),
            )
        ) or "⊤"
        head = f"ϕ({', '.join(map(str, free))})"
        if bound:
            return f"{head} = ∃ {', '.join(map(str, bound))} : {atoms}"
        return f"{head} = {atoms}"

    def __repr__(self) -> str:
        return (
            f"ConjunctiveQuery(|V|={self.num_variables()}, "
            f"|X|={len(self.free_variables)}, atoms={self.num_atoms()})"
        )


def query_from_atoms(
    atoms: Iterable[tuple[Vertex, Vertex]],
    free_variables: Iterable[Vertex],
    extra_variables: Iterable[Vertex] = (),
) -> ConjunctiveQuery:
    """Build a query from ``E``-atoms; variables are collected from the atoms
    plus ``free_variables`` plus ``extra_variables`` (isolated variables are
    legal, if unusual)."""
    graph = Graph(vertices=list(free_variables) + list(extra_variables))
    for u, v in atoms:
        if u == v:
            raise QueryError(f"atom E({u}, {u}) is a self-loop; graphs are simple")
        graph.add_edge(u, v)
    return ConjunctiveQuery(graph, free_variables)


def relabel_query(query: ConjunctiveQuery, mapping: dict) -> ConjunctiveQuery:
    """Rename variables through a bijection."""
    return ConjunctiveQuery(
        query.graph.relabelled(mapping),
        frozenset(mapping[x] for x in query.free_variables),
    )


def all_sub_queries_on_induced_subsets(
    query: ConjunctiveQuery,
) -> Iterator[ConjunctiveQuery]:
    """All queries ``(H[S], X ∩ S)`` for ``X ⊆ S ⊆ V(H)`` — the candidate
    counting-minimal representatives (minimality is w.r.t. subgraphs and
    must keep the free variables)."""
    from itertools import combinations

    quantified = sorted(query.quantified_variables, key=repr)
    free = query.free_variables
    for size in range(len(quantified) + 1):
        for chosen in combinations(quantified, size):
            keep = set(free) | set(chosen)
            yield ConjunctiveQuery(query.graph.induced_subgraph(keep), free)
