"""``repro.obs`` — zero-dependency observability for the whole stack.

Three pieces, all stdlib-only:

* :mod:`repro.obs.metrics` — a process-global, thread-safe
  :class:`MetricsRegistry` of counters, gauges, and fixed-bucket
  histograms with labeled families, rendered as Prometheus text or JSON.
  Subsystems that already keep stats objects (``CacheStats``,
  ``SchedulerStats``, …) export them via scrape-time *collectors*, so
  the hot path pays nothing.
* :mod:`repro.obs.trace` — ``span("engine.compile", **attrs)`` context
  managers building per-request span trees, propagated across asyncio
  and worker-pool hops via ``contextvars``, with bounded ring buffers
  of recent and slow traces.
* :mod:`repro.obs.logging` — structured (key=value / JSON) stdlib
  logging with per-subsystem loggers and a ``REPRO_LOG`` env switch;
  log lines carry the current trace id.
"""

from repro.obs.logging import (
    configure_from_env,
    configure_logging,
    get_logger,
    log_event,
)
from repro.obs.metrics import (
    DEFAULT_MS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    family_snapshot,
    registry,
)
from repro.obs.trace import (
    Span,
    bind_current_context,
    child_span,
    clear_traces,
    current_span,
    current_trace_id,
    leaf_span,
    recent_traces,
    render_span,
    set_slow_threshold_ms,
    set_trace_sampling,
    set_tracing,
    slow_threshold_ms,
    slow_traces,
    span,
    span_to_dict,
    trace_sampling,
    tracing_enabled,
)

__all__ = [
    "DEFAULT_MS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "MetricFamily",
    "MetricsRegistry",
    "Span",
    "bind_current_context",
    "child_span",
    "clear_traces",
    "configure_from_env",
    "configure_logging",
    "current_span",
    "current_trace_id",
    "family_snapshot",
    "get_logger",
    "leaf_span",
    "log_event",
    "recent_traces",
    "registry",
    "render_span",
    "set_slow_threshold_ms",
    "set_trace_sampling",
    "set_tracing",
    "slow_threshold_ms",
    "slow_traces",
    "span",
    "span_to_dict",
    "trace_sampling",
    "tracing_enabled",
]
