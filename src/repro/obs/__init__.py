"""``repro.obs`` — zero-dependency observability for the whole stack.

Three pieces, all stdlib-only:

* :mod:`repro.obs.metrics` — a process-global, thread-safe
  :class:`MetricsRegistry` of counters, gauges, and fixed-bucket
  histograms with labeled families, rendered as Prometheus text or JSON.
  Subsystems that already keep stats objects (``CacheStats``,
  ``SchedulerStats``, …) export them via scrape-time *collectors*, so
  the hot path pays nothing.
* :mod:`repro.obs.trace` — ``span("engine.compile", **attrs)`` context
  managers building per-request span trees, propagated across asyncio
  and worker-pool hops via ``contextvars``, with bounded ring buffers
  of recent and slow traces.
* :mod:`repro.obs.logging` — structured (key=value / JSON) stdlib
  logging with per-subsystem loggers and a ``REPRO_LOG`` env switch;
  log lines carry the current trace id.

Plus the performance-telemetry layer built on the span substrate:

* :mod:`repro.obs.profile` — a span-attributed sampling profiler
  (daemon thread over ``sys._current_frames()``), start/stoppable at
  runtime, emitting collapsed-stack / flame-graph output.
* :mod:`repro.obs.cost` — per-task cost breakdowns
  (compile/execute/encode/lookup) derived lazily from span trees and
  exported as the ``repro_task_phase_ms`` histogram family.
* :mod:`repro.obs.slowlog` — a bounded ring of task executions over a
  latency threshold, each entry carrying the canonical task key, plan,
  cost breakdown, and trace id.

And the judgement layer on top of all of it (PR 9):

* :mod:`repro.obs.health` — named probes (event-loop lag watchdog,
  GC-pause tracking, memory watermarks, plus service-registered
  scheduler/store/journal probes) aggregated into
  ``ok | degraded | failing`` liveness/readiness verdicts.
* :mod:`repro.obs.slo` — per-key rolling latency/error windows,
  ``REPRO_SLO="count:p99<250ms,err<0.1%"`` objective parsing, and
  error-budget burn-rate gauges.
* :mod:`repro.obs.alerts` — a declarative alert rule engine evaluated
  on scrape, with firing/resolved transitions as structured log events
  and the ``repro_alerts_firing`` gauge.
"""

from repro.obs.alerts import (
    AlertManager,
    AlertRule,
    burn_rate_rule,
    probe_rule,
    threshold_rule,
)
from repro.obs.health import (
    EventLoopLagMonitor,
    GcPauseTracker,
    HealthRegistry,
    HealthReport,
    MemoryWatermarkProbe,
    ProbeResult,
    degraded,
    failing,
    ok,
    rss_bytes,
)
from repro.obs.slo import (
    Objective,
    RollingWindow,
    SloTracker,
    configure_slo,
    observe_slo,
    parse_slo,
    set_slo_tracking,
    slo_report,
    tracker,
)

from repro.obs.cost import (
    COST_PHASES,
    cost_breakdown,
    observe_task_cost,
    render_cost,
)
from repro.obs.logging import (
    configure_from_env,
    configure_logging,
    get_logger,
    log_event,
)
from repro.obs.metrics import (
    DEFAULT_MS_BUCKETS,
    DEFAULT_SIZE_BUCKETS,
    MetricFamily,
    MetricsRegistry,
    family_snapshot,
    registry,
)
from repro.obs.profile import (
    SamplingProfiler,
    profile_snapshot,
    profiling_active,
    render_collapsed,
    start_profiling,
    stop_profiling,
)
from repro.obs.slowlog import (
    clear_slow_queries,
    maybe_record,
    set_slowlog_limit,
    set_slowlog_threshold_ms,
    slow_queries,
    slowlog_limit,
    slowlog_threshold_ms,
)
from repro.obs.trace import (
    Span,
    bind_current_context,
    child_span,
    clear_traces,
    current_span,
    current_trace_id,
    leaf_span,
    recent_traces,
    render_span,
    set_slow_threshold_ms,
    set_trace_sampling,
    set_tracing,
    slow_threshold_ms,
    slow_traces,
    span,
    span_to_dict,
    trace_sampling,
    tracing_enabled,
)

__all__ = [
    "AlertManager",
    "AlertRule",
    "COST_PHASES",
    "DEFAULT_MS_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "EventLoopLagMonitor",
    "GcPauseTracker",
    "HealthRegistry",
    "HealthReport",
    "MemoryWatermarkProbe",
    "MetricFamily",
    "MetricsRegistry",
    "Objective",
    "ProbeResult",
    "RollingWindow",
    "SamplingProfiler",
    "SloTracker",
    "Span",
    "burn_rate_rule",
    "probe_rule",
    "threshold_rule",
    "bind_current_context",
    "child_span",
    "clear_slow_queries",
    "clear_traces",
    "configure_from_env",
    "configure_logging",
    "configure_slo",
    "cost_breakdown",
    "current_span",
    "current_trace_id",
    "degraded",
    "failing",
    "family_snapshot",
    "get_logger",
    "leaf_span",
    "log_event",
    "maybe_record",
    "observe_slo",
    "observe_task_cost",
    "ok",
    "parse_slo",
    "profile_snapshot",
    "profiling_active",
    "recent_traces",
    "registry",
    "render_collapsed",
    "render_cost",
    "render_span",
    "rss_bytes",
    "set_slo_tracking",
    "set_slow_threshold_ms",
    "set_slowlog_limit",
    "set_slowlog_threshold_ms",
    "set_trace_sampling",
    "set_tracing",
    "slo_report",
    "slow_queries",
    "slow_threshold_ms",
    "slow_traces",
    "slowlog_limit",
    "slowlog_threshold_ms",
    "span",
    "span_to_dict",
    "start_profiling",
    "stop_profiling",
    "trace_sampling",
    "tracing_enabled",
    "tracker",
]
