"""Span-attributed sampling profiler — zero-dependency, start/stoppable.

A :class:`SamplingProfiler` wakes on its own daemon thread every
``interval_ms``, snapshots every thread's frame stack via
``sys._current_frames()`` (no ``sys.setprofile`` hooks — the profiled
code runs completely unmodified), and aggregates the samples into
collapsed stacks.  Each sample is attributed to the span that was
current on the sampled thread at that instant: while a profiler runs,
instrumented ``Span.__enter__``/``__exit__`` variants are swapped onto
the span class that publish per-thread current spans in a table the
sampler can read (contextvars are only readable from their own thread).
Stopped, the original methods are restored, so the profiler-disabled
span hot path carries **zero** profiler code — gated on the warm
bench_api workload by ``benchmarks/bench_obs.py``.

Output is flame-graph ready: :meth:`SamplingProfiler.render_collapsed`
emits classic ``span;outer;inner <count>`` collapsed-stack lines
(``flamegraph.pl`` / speedscope input), and :meth:`SamplingProfiler
.snapshot` the JSON shape served by ``GET /profile``.  The module-level
:func:`start_profiling` / :func:`stop_profiling` pair manages one
process-global profiler for the service routes and ``repro profile``.

Sampling bias to keep in mind: stacks are captured at interval
boundaries, so anything shorter than the interval is seen
probabilistically — counts estimate *where time is spent*, not how
often a function is called.  Threads parked in known blocking calls
(``wait``, ``select``, ``accept``…) are skipped by default so a mostly
idle server profile shows work, not waiting; pass ``keep_idle=True``
to keep them.
"""

from __future__ import annotations

import sys
import threading
from time import perf_counter

from repro.errors import ObservabilityError
from repro.obs import trace as _trace

__all__ = [
    "SamplingProfiler",
    "start_profiling",
    "stop_profiling",
    "profiling_active",
    "profile_snapshot",
    "render_collapsed",
]

DEFAULT_INTERVAL_MS = 5.0
MAX_STACK_DEPTH = 48
SNAPSHOT_STACK_LIMIT = 200

# Leaf functions that mean "this thread is parked, not working".  The
# sampler skips such samples by default: a serving process is mostly
# blocked threads (selector loop, queue gets, pool waits), and keeping
# them would bury the actual compute under idle stacks.
IDLE_LEAF_FUNCTIONS = frozenset({
    "wait", "wait_for", "_wait_for_tstate_lock", "select", "poll",
    "epoll", "kqueue", "accept", "recv", "recv_into", "read", "readline",
    "readinto", "get", "acquire", "sleep", "settrace", "_recv", "join",
})


def _rank_key(item) -> tuple:
    """Heaviest first, then a total order (span name may be ``None``)."""
    (span_name, frames), count = item
    return (-count, span_name or "", frames)


def _frame_label(frame) -> str:
    """One stack entry: ``module.py:qualname`` (stable across runs)."""
    code = frame.f_code
    filename = code.co_filename.rsplit("/", 1)[-1]
    # co_qualname (3.11+) distinguishes methods sharing a name.
    name = getattr(code, "co_qualname", None) or code.co_name
    return f"{filename}:{name}"


class SamplingProfiler:
    """Aggregate frame-stack samples attributed to the current span."""

    def __init__(
        self,
        interval_ms: float = DEFAULT_INTERVAL_MS,
        keep_idle: bool = False,
    ) -> None:
        interval_ms = float(interval_ms)
        if not interval_ms > 0:
            raise ObservabilityError(
                f"profiler interval must be positive, got {interval_ms!r}",
            )
        self.interval_ms = interval_ms
        self.keep_idle = bool(keep_idle)
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self._started_at = 0.0
        self._elapsed_s = 0.0
        # (span name | None, leaf-first frame tuple) -> sample count
        self._stacks: dict[tuple, int] = {}
        self._samples = 0
        self._idle_skipped = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "SamplingProfiler":
        with self._lock:
            if self._thread is not None:
                raise ObservabilityError("profiler is already running")
            self._stop.clear()
            self._started_at = perf_counter()
            _trace._set_profile_hook(True)
            self._thread = threading.Thread(
                target=self._run, name="repro-profiler", daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> dict:
        """Stop sampling and return the final :meth:`snapshot`."""
        with self._lock:
            thread = self._thread
            if thread is not None:
                self._stop.set()
        if thread is None:  # already stopped: snapshot re-locks, so
            return self.snapshot()  # it must run outside the block
        thread.join(timeout=5.0)
        with self._lock:
            self._thread = None
            self._elapsed_s += perf_counter() - self._started_at
            _trace._set_profile_hook(False)
        return self.snapshot()

    # ------------------------------------------------------------------
    # sampling loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        own_ident = threading.get_ident()
        interval_s = self.interval_ms / 1000.0
        spans = _trace._profile_threads
        while not self._stop.wait(interval_s):
            # sys._current_frames() returns a materialised dict — safe to
            # walk while the threads keep running; stacks are a snapshot
            # of the instant the dict was built.
            for ident, frame in sys._current_frames().items():
                if ident == own_ident:
                    continue
                if not self.keep_idle and frame.f_code.co_name in IDLE_LEAF_FUNCTIONS:
                    with self._lock:
                        self._idle_skipped += 1
                    continue
                stack = []
                depth = 0
                while frame is not None and depth < MAX_STACK_DEPTH:
                    stack.append(_frame_label(frame))
                    frame = frame.f_back
                    depth += 1
                span = spans.get(ident)
                key = (span.name if span is not None else None, tuple(stack))
                with self._lock:
                    self._stacks[key] = self._stacks.get(key, 0) + 1
                    self._samples += 1

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def _elapsed(self) -> float:
        if self._thread is not None:
            return self._elapsed_s + (perf_counter() - self._started_at)
        return self._elapsed_s

    def snapshot(self, limit: int = SNAPSHOT_STACK_LIMIT) -> dict:
        """The aggregated profile as a JSON-able dict (``GET /profile``).

        ``stacks`` lists the heaviest collapsed stacks (root-first frame
        order, capped at ``limit``); ``spans`` totals samples per
        attributed span name (``None`` key rendered as ``"-"``).
        """
        with self._lock:
            stacks = dict(self._stacks)
            samples = self._samples
            idle = self._idle_skipped
            elapsed = self._elapsed()
            running = self._thread is not None
        by_span: dict[str, int] = {}
        for (span_name, _), count in stacks.items():
            label = span_name if span_name is not None else "-"
            by_span[label] = by_span.get(label, 0) + count
        ranked = sorted(stacks.items(), key=_rank_key)
        return {
            "running": running,
            "interval_ms": self.interval_ms,
            "elapsed_s": round(elapsed, 3),
            "samples": samples,
            "idle_skipped": idle,
            "distinct_stacks": len(stacks),
            "spans": {name: by_span[name] for name in sorted(by_span)},
            "stacks": [
                {
                    "span": span_name,
                    "frames": list(reversed(frames)),  # root-first
                    "samples": count,
                }
                for (span_name, frames), count in ranked[:limit]
            ],
        }

    def render_collapsed(self) -> str:
        """Collapsed-stack text: ``span;root;…;leaf count`` per line.

        The classic flame-graph input format — feed it straight to
        ``flamegraph.pl`` or paste it into speedscope.  The attributed
        span name is the first frame, so one flame graph shows where
        each task kind spends its time.
        """
        with self._lock:
            stacks = dict(self._stacks)
        lines = []
        for (span_name, frames), count in sorted(stacks.items(), key=_rank_key):
            prefix = span_name if span_name is not None else "-"
            lines.append(
                ";".join([prefix, *reversed(frames)]) + f" {count}",
            )
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop accumulated samples (the sampler keeps running)."""
        with self._lock:
            self._stacks.clear()
            self._samples = 0
            self._idle_skipped = 0
            self._elapsed_s = 0.0
            if self._thread is not None:
                self._started_at = perf_counter()


# ----------------------------------------------------------------------
# the process-global profiler (service routes, CLI)
# ----------------------------------------------------------------------
_active: SamplingProfiler | None = None
_active_lock = threading.Lock()


def start_profiling(
    interval_ms: float = DEFAULT_INTERVAL_MS, keep_idle: bool = False,
) -> SamplingProfiler:
    """Start the process-global profiler (off by default, one at a time)."""
    global _active
    with _active_lock:
        if _active is not None and _active.running:
            raise ObservabilityError("a profiler is already running")
        profiler = SamplingProfiler(interval_ms=interval_ms, keep_idle=keep_idle)
        profiler.start()
        _active = profiler
        return profiler


def stop_profiling() -> dict:
    """Stop the process-global profiler; returns its final snapshot.

    The stopped profiler's samples stay readable through
    :func:`profile_snapshot` until the next :func:`start_profiling`."""
    with _active_lock:
        if _active is None:
            raise ObservabilityError("no profiler is running")
        return _active.stop()


def profiling_active() -> bool:
    with _active_lock:
        return _active is not None and _active.running


def profile_snapshot(limit: int = SNAPSHOT_STACK_LIMIT) -> dict:
    """The global profiler's snapshot (empty shape when never started)."""
    with _active_lock:
        profiler = _active
    if profiler is None:
        return {
            "running": False,
            "interval_ms": None,
            "elapsed_s": 0.0,
            "samples": 0,
            "idle_skipped": 0,
            "distinct_stacks": 0,
            "spans": {},
            "stacks": [],
        }
    return profiler.snapshot(limit)


def render_collapsed() -> str:
    """The global profiler's collapsed-stack text ("" when never started)."""
    with _active_lock:
        profiler = _active
    return profiler.render_collapsed() if profiler is not None else ""
