"""A small declarative alert rule engine, evaluated on scrape.

An :class:`AlertRule` is a named check returning ``(firing, value,
reason)``; an :class:`AlertManager` evaluates its rules, detects
firing↔resolved transitions, emits them as structured log events
(``alert-firing`` / ``alert-resolved``), and exports the
``repro_alerts_firing`` labeled gauge.  Evaluation happens whenever
``/alerts`` is hit or metrics are scraped — there is no background
evaluation thread, which keeps the engine zero-cost while nobody is
looking and race-free by construction (evaluation is serialised under
one lock).

Rule helpers cover the standard service rules: SLO burn rate, event-loop
lag, scheduler queue saturation, and health-probe escalation.  A rule
whose check raises reports ``error`` status (never firing, never
crashing the scrape) with the exception in its reason.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Callable, Iterable

from repro.obs.logging import get_logger, log_event
from repro.obs.metrics import family_snapshot

__all__ = [
    "AlertRule",
    "AlertManager",
    "burn_rate_rule",
    "probe_rule",
    "threshold_rule",
]

_log = get_logger("alerts")

# A check returns (firing, value, reason).
CheckFn = Callable[[], tuple[bool, object, str]]


class AlertRule:
    """One named alert: a check plus severity and description."""

    def __init__(
        self,
        name: str,
        check: CheckFn,
        severity: str = "warn",
        description: str = "",
    ) -> None:
        self.name = name
        self.check = check
        self.severity = severity
        self.description = description
        # transition state, owned by the manager's lock
        self.firing = False
        self.since: float | None = None
        self.value: object = None
        self.reason: str = ""
        self.error: str | None = None

    def to_dict(self, now: float) -> dict:
        payload: dict = {
            "name": self.name,
            "severity": self.severity,
            "firing": self.firing,
            "value": self.value,
            "reason": self.reason,
        }
        if self.description:
            payload["description"] = self.description
        if self.firing and self.since is not None:
            payload["for_seconds"] = round(now - self.since, 3)
        if self.error:
            payload["error"] = self.error
        return payload


class AlertManager:
    """Evaluates rules, tracks transitions, exports the firing gauge."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self._lock = threading.Lock()
        self._rules: dict[str, AlertRule] = {}
        self._clock = clock

    def add_rule(
        self,
        name: str,
        check: CheckFn,
        severity: str = "warn",
        description: str = "",
    ) -> AlertRule:
        rule = AlertRule(name, check, severity=severity, description=description)
        with self._lock:
            self._rules[name] = rule
        return rule

    def remove_rule(self, name: str) -> None:
        with self._lock:
            self._rules.pop(name, None)

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._rules)

    def evaluate(self) -> list[dict]:
        """Run every rule, log transitions, return the rule states."""
        now = self._clock()
        with self._lock:
            states = []
            for rule in self._rules.values():
                try:
                    firing, value, reason = rule.check()
                    rule.error = None
                except Exception as error:  # noqa: BLE001 - a broken rule
                    firing = False          # must never break the scrape
                    value, reason = None, ""
                    rule.error = f"{type(error).__name__}: {error}"
                if firing and not rule.firing:
                    rule.since = now
                    log_event(
                        _log, logging.WARNING, "alert-firing",
                        alert=rule.name, severity=rule.severity,
                        value=value, reason=reason,
                    )
                elif rule.firing and not firing:
                    held = now - rule.since if rule.since is not None else 0.0
                    log_event(
                        _log, logging.INFO, "alert-resolved",
                        alert=rule.name, severity=rule.severity,
                        fired_for_seconds=round(held, 3),
                    )
                    rule.since = None
                rule.firing = firing
                rule.value = value
                rule.reason = reason
                states.append(rule.to_dict(now))
            return states

    def firing(self) -> list[str]:
        """Names of currently firing rules (re-evaluates)."""
        return [state["name"] for state in self.evaluate() if state["firing"]]

    def metric_families(self) -> list[tuple[str, dict]]:
        """Scrape-time collector: ``repro_alerts_firing`` 0/1 gauge."""
        states = self.evaluate()
        if not states:
            return []
        return [
            family_snapshot(
                "repro_alerts_firing",
                "gauge",
                [
                    (
                        {"alert": state["name"], "severity": state["severity"]},
                        1 if state["firing"] else 0,
                    )
                    for state in states
                ],
                help="1 while the alert rule is firing",
            ),
        ]


# ----------------------------------------------------------------------
# rule builders
# ----------------------------------------------------------------------

def burn_rate_rule(
    tracker,
    objective,
    threshold: float = 1.0,
) -> tuple[str, CheckFn, str, str]:
    """``(name, check, severity, description)`` for one SLO objective:
    fires while its burn rate exceeds ``threshold``."""
    described = objective.describe()

    def check() -> tuple[bool, object, str]:
        for status in tracker.report()["objectives"]:
            if status["objective"] == described:
                burn = status["burn_rate"]
                return (
                    burn > threshold,
                    burn,
                    f"burn rate {burn:g} (budget multiplier > {threshold:g})",
                )
        return False, None, "objective not configured"

    return (
        f"slo-burn:{described}",
        check,
        "warn",
        f"error budget for {described} burning faster than {threshold:g}x",
    )


def probe_rule(
    registry,
    probe_name: str,
    severity: str = "warn",
    fire_on: Iterable[str] = ("degraded", "failing"),
) -> tuple[str, CheckFn, str, str]:
    """Fires while the named health probe reports a status in
    ``fire_on``."""
    statuses = frozenset(fire_on)

    def check() -> tuple[bool, object, str]:
        report = registry.check(names=[probe_name])
        result = report.probes.get(probe_name)
        if result is None:
            return False, None, f"probe {probe_name!r} not registered"
        return (
            result.status in statuses,
            result.status,
            result.reason or result.status,
        )

    return (
        f"probe:{probe_name}",
        check,
        severity,
        f"health probe {probe_name!r} reports {'/'.join(sorted(statuses))}",
    )


def threshold_rule(
    name: str,
    read: Callable[[], float | None],
    threshold: float,
    severity: str = "warn",
    unit: str = "",
    description: str = "",
) -> tuple[str, CheckFn, str, str]:
    """Fires while ``read()`` returns a value ``>= threshold``."""

    def check() -> tuple[bool, object, str]:
        value = read()
        if value is None:
            return False, None, "no data"
        return (
            value >= threshold,
            round(value, 4) if isinstance(value, float) else value,
            f"{value:g}{unit} >= {threshold:g}{unit}",
        )

    return (name, check, severity, description or f"{name} >= {threshold:g}{unit}")
