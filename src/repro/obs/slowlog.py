"""Slow-query log: a bounded ring of task executions over a threshold.

The trace rings (:func:`repro.obs.trace.slow_traces`) answer "show me
recent slow *span trees*"; the slow-query log answers the operator's
follow-up — *which task was that, what plan did it run, and where did
the time go?*  Every executor hands its finished :class:`Result` to
:func:`maybe_record`; entries over the threshold capture the canonical
task cache key, the plan/backend description, the full ``.explain()``
output, the :func:`~repro.obs.cost.cost_breakdown`, and the trace id —
enough to re-run, re-plan, or cross-reference the request in ``GET
/traces`` without having caught it live.

Served at ``GET /slow-queries`` and ``repro slowlog``.  The threshold is
process-wide (``REPRO_SLOWLOG_MS`` env, default 100 ms, runtime-settable
via :func:`set_slowlog_threshold_ms`); the hot-path cost for fast tasks
is one call and one float compare — the expensive parts (cost walk,
explain rendering) only run for tasks that were already slow.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import deque
from time import time as _wall_clock

from repro.errors import ObservabilityError
from repro.obs.cost import cost_breakdown
from repro.obs.metrics import registry

__all__ = [
    "maybe_record",
    "slow_queries",
    "clear_slow_queries",
    "set_slowlog_threshold_ms",
    "slowlog_threshold_ms",
    "set_slowlog_limit",
    "slowlog_limit",
]

DEFAULT_SLOWLOG_MS = 100.0
DEFAULT_SLOWLOG_LIMIT = 64


def _env_threshold() -> float:
    raw = os.environ.get("REPRO_SLOWLOG_MS", "").strip()
    if not raw:
        return DEFAULT_SLOWLOG_MS
    try:
        return float(raw)
    except ValueError:
        return DEFAULT_SLOWLOG_MS


_threshold_ms = _env_threshold()
_entries: deque = deque(maxlen=DEFAULT_SLOWLOG_LIMIT)
_config_lock = threading.Lock()
_seq = itertools.count(1)


def set_slowlog_threshold_ms(threshold: float) -> float:
    """Tasks at least this slow are logged; returns the previous value.

    ``float("inf")`` disables capture outright.
    """
    global _threshold_ms
    threshold = float(threshold)
    if threshold < 0:
        raise ObservabilityError("slow-query threshold must be >= 0")
    with _config_lock:
        previous = _threshold_ms
        _threshold_ms = threshold
    return previous


def slowlog_threshold_ms() -> float:
    return _threshold_ms


def set_slowlog_limit(limit: int) -> int:
    """Resize the ring (keeping the newest entries); returns the old size."""
    global _entries
    limit = int(limit)
    if limit < 1:
        raise ObservabilityError("slow-query log size must be >= 1")
    with _config_lock:
        previous = _entries.maxlen or DEFAULT_SLOWLOG_LIMIT
        _entries = deque(_entries, maxlen=limit)
    return previous


def slowlog_limit() -> int:
    return _entries.maxlen or DEFAULT_SLOWLOG_LIMIT


def maybe_record(task, result) -> dict | None:
    """Log ``result`` if it exceeded the threshold; returns the entry.

    ``task`` is the executed spec (for the canonical cache key) — may be
    ``None`` for callers that only hold the result.  Fast results return
    immediately after one float compare.
    """
    if result.elapsed_ms < _threshold_ms:
        return None
    trace = result.trace
    trace_id = None
    if trace is not None:
        trace_id = (
            trace.get("trace_id") if isinstance(trace, dict) else trace.trace_id
        )
    entry = {
        "seq": next(_seq),
        "time": round(_wall_clock(), 3),
        "task_key": task.cache_key() if task is not None else None,
        "kind": result.kind,
        "executor": result.executor,
        "backend": result.backend,
        "cached": result.cached,
        "version": result.version,
        "elapsed_ms": round(result.elapsed_ms, 3),
        "threshold_ms": _threshold_ms,
        "trace_id": trace_id,
        "cost": cost_breakdown(trace),
        "explain": result.explain(),
    }
    _entries.append(entry)
    registry().counter(
        "repro_slow_queries_total",
        help="Task executions slower than the slow-query threshold",
        labelnames=("kind", "executor"),
    ).labels(kind=result.kind, executor=result.executor).inc()
    return entry


def slow_queries(limit: int | None = None) -> list[dict]:
    """Logged slow queries, newest last (the ``GET /slow-queries`` body)."""
    entries = list(_entries)
    return entries if limit is None else entries[-limit:]


def clear_slow_queries() -> None:
    _entries.clear()
