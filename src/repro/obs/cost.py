"""Per-task cost accounting assembled from span trees.

A task's span tree already times every phase the stack went through —
``engine.compile``, ``engine.execute``, ``task.encode`` children under
the task span — so the cost breakdown is *derived*, not separately
measured: :func:`cost_breakdown` walks the tree once and buckets child
durations into compile / execute / encode, with the unattributed
remainder (cache lookups, key canonicalisation, dispatch) reported as
``lookup_ms``.  On a warm cache hit there are no phase children at all
and the whole elapsed time is lookup — exactly the right reading.

The walk runs lazily — in ``Result.explain()``, when a result is
serialised to the wire, and when the slow-query log captures an entry —
never on the warm per-call path, so cost accounting adds nothing to the
bench_obs overhead budget.

:func:`observe_task_cost` feeds the breakdown into the
``repro_task_phase_ms`` histogram family (labels ``kind`` × ``backend``
× ``phase``), giving ``/metrics`` a longitudinal per-phase latency
distribution to set the compiled-kernel and scale-out work against.
"""

from __future__ import annotations

from typing import Mapping

from repro.obs.metrics import DEFAULT_MS_BUCKETS, registry

__all__ = [
    "COST_PHASES",
    "cost_breakdown",
    "render_cost",
    "observe_task_cost",
]

# Phase attribution by span name.  Exact names first; ``task.encode``
# spans carry a suffix (``task.encode.target`` / ``task.encode.kg``), so
# encode matches by prefix.  A matching span claims its whole subtree —
# nested phase spans (execute under compile would be a bug anyway) are
# not double counted.
COST_PHASES = ("compile", "execute", "encode", "lookup")

_EXACT_PHASE = {
    "engine.compile": "compile",
    "engine.execute": "execute",
}
_ENCODE_PREFIX = "task.encode"


def _node_fields(node) -> tuple[str, float, tuple]:
    """(name, duration_ms, children) for a live Span or a wire dict."""
    if isinstance(node, Mapping):
        return (
            node.get("name", ""),
            float(node.get("duration_ms", 0.0)),
            tuple(node.get("children", ())),
        )
    return node.name, node.duration_ms, tuple(node.children)


def _phase_of(name: str) -> str | None:
    phase = _EXACT_PHASE.get(name)
    if phase is not None:
        return phase
    if name.startswith(_ENCODE_PREFIX):
        return "encode"
    return None


def cost_breakdown(trace) -> dict | None:
    """Bucket a span tree's time into compile/execute/encode/lookup.

    ``trace`` is a live :class:`~repro.obs.trace.Span` or the dict a wire
    round-trip turned it into (``Result.trace`` either way); ``None`` in,
    ``None`` out, so callers need no tracing-enabled conditionals.

    Returns ``{"total_ms", "compile_ms", "execute_ms", "encode_ms",
    "lookup_ms", "compile_spans", "execute_spans", "encode_spans",
    "span_count"}`` — the ``*_spans`` counts are the work counters (how
    many compiles/executions/encodings actually ran; all zero means the
    task was served entirely from cache and ``lookup_ms == total_ms``).
    """
    if trace is None:
        return None
    name, total_ms, children = _node_fields(trace)
    phase_ms = {"compile": 0.0, "execute": 0.0, "encode": 0.0}
    phase_spans = {"compile": 0, "execute": 0, "encode": 0}
    span_count = 1
    stack = list(children)
    while stack:
        node = stack.pop()
        node_name, node_ms, node_children = _node_fields(node)
        span_count += 1
        phase = _phase_of(node_name)
        if phase is not None:
            phase_ms[phase] += node_ms
            phase_spans[phase] += 1
            # the phase span claims its subtree; count descendants but
            # don't re-bucket them
            tail = list(node_children)
            while tail:
                inner = tail.pop()
                _, _, inner_children = _node_fields(inner)
                span_count += 1
                tail.extend(inner_children)
        else:
            stack.extend(node_children)
    attributed = sum(phase_ms.values())
    return {
        "total_ms": round(total_ms, 3),
        "compile_ms": round(phase_ms["compile"], 3),
        "execute_ms": round(phase_ms["execute"], 3),
        "encode_ms": round(phase_ms["encode"], 3),
        "lookup_ms": round(max(total_ms - attributed, 0.0), 3),
        "compile_spans": phase_spans["compile"],
        "execute_spans": phase_spans["execute"],
        "encode_spans": phase_spans["encode"],
        "span_count": span_count,
    }


def render_cost(cost: Mapping) -> str:
    """One-line-per-phase text (the ``.explain()`` cost block body)."""
    lines = [f"total    {cost['total_ms']:.3f} ms"]
    for phase in ("compile", "execute", "encode"):
        ms = cost.get(f"{phase}_ms", 0.0)
        spans = cost.get(f"{phase}_spans", 0)
        if spans:
            lines.append(f"{phase:8s} {ms:.3f} ms  ({spans} span(s))")
    lines.append(f"lookup   {cost.get('lookup_ms', 0.0):.3f} ms")
    return "\n".join(lines)


def _phase_family():
    return registry().histogram(
        "repro_task_phase_ms",
        help="Per-task time by phase (compile/execute/encode/lookup)",
        labelnames=("kind", "backend", "phase"),
        buckets=DEFAULT_MS_BUCKETS,
    )


def observe_task_cost(kind: str, backend, cost: Mapping | None) -> None:
    """Record a task's phase breakdown in ``repro_task_phase_ms``.

    Call sites keep this off the warm path: executors only observe when
    the span tree has children (i.e. some real phase work happened), so
    a warm cache hit costs nothing here.
    """
    if cost is None:
        return
    family = _phase_family()
    backend_label = backend if backend is not None else "-"
    for phase in COST_PHASES:
        ms = cost.get(f"{phase}_ms", 0.0)
        if phase != "lookup" and not cost.get(f"{phase}_spans", 0):
            continue
        family.labels(kind=kind, backend=backend_label, phase=phase).observe(ms)
