"""Rolling SLO windows, objective parsing, and burn-rate computation.

Service-level objectives turn the raw latency/error telemetry from PR 6
into a pass/fail judgement: *"99% of count requests complete under
250ms"*.  This module keeps one :class:`RollingWindow` per observed key
(a route name like ``count`` or a task kind like ``hom-count``) — a ring
of fixed time slices, each holding the same cumulative-bucket layout as
:class:`repro.obs.metrics.Histogram`, so old observations age out
instead of accumulating forever.

Objectives are configured with the ``REPRO_SLO`` grammar::

    REPRO_SLO="count:p99<250ms,err<0.1%;hom-count:p95<50ms"

``;`` separates per-key objective groups, ``,`` separates conditions
inside a group, and each condition is either ``pNN<THRESHOLDms``
(a latency quantile objective) or ``err<RATE%`` (an error-rate
objective).  :func:`parse_slo` turns the string into
:class:`Objective` tuples; the process-global :class:`SloTracker` is
seeded from the environment at import.

For each objective the tracker reports *attainment* (the observed
quantile or error rate over the window) and a **burn rate** — how fast
the error budget is being consumed:

* latency: ``(1 - fraction_within_threshold) / (1 - quantile)`` — 1.0
  means exactly on budget, 2.0 means burning budget twice as fast as
  allowed;
* errors: ``observed_error_rate / target_rate``.

The hot-path entry point is :func:`observe_slo`; it is a cheap no-op
when tracking is disabled and, when on, one allocation-free append of
the latency value onto a per-key *lane* (a plain list — the float is
the caller's object, nothing is boxed or timestamped per event).  A
lane is stamped with the clock once, when its first event after a drain
arrives; bucketing, locking, and window maintenance all happen in
:meth:`SloTracker._flush`, which drains lanes on every report/scrape
and inline once a lane reaches ``_FLUSH_THRESHOLD`` events.  A drained
batch lands in the window slice of its first event's timestamp — at
most one 10s slice of skew for a batch, and skew toward *older*, so
observations never outlive their true window.  The bench_obs
``GATE_HEALTH`` gate bounds exactly this enabled-vs-disabled
steady-state ratio on the warm task workload.
"""

from __future__ import annotations

import bisect
import os
import re
import threading
import time
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from repro.errors import ObservabilityError
from repro.obs.metrics import DEFAULT_MS_BUCKETS, family_snapshot, registry

__all__ = [
    "Objective",
    "RollingWindow",
    "SloTracker",
    "parse_slo",
    "tracker",
    "observe_slo",
    "set_slo_tracking",
    "configure_slo",
    "slo_report",
    "DEFAULT_SLICES",
    "DEFAULT_SLICE_SECONDS",
]

# Six 10-second slices: a one-minute rolling window, matching the
# shortest window most burn-rate alerting schemes evaluate.
DEFAULT_SLICES = 6
DEFAULT_SLICE_SECONDS = 10.0

# Lanes are drained on every report/scrape, and inline once a lane
# reaches this many events (bounds memory between scrapes — the lane
# holds references to already-live floats, so 4096 entries is ~32KB).
_FLUSH_THRESHOLD = 4096

_CONDITION_RE = re.compile(
    r"^(?:p(?P<quantile>\d{1,2}(?:\.\d+)?)<(?P<ms>\d+(?:\.\d+)?)ms"
    r"|err<(?P<rate>\d+(?:\.\d+)?)%)$"
)


@dataclass(frozen=True)
class Objective:
    """One parsed SLO condition for one window key."""

    key: str
    kind: str  # "latency" | "error-rate"
    quantile: float | None = None  # e.g. 0.99 for p99 (latency only)
    threshold_ms: float | None = None  # latency only
    max_error_rate: float | None = None  # error-rate only

    def describe(self) -> str:
        if self.kind == "latency":
            q = self.quantile * 100
            q_text = f"{q:g}"
            return f"{self.key}:p{q_text}<{self.threshold_ms:g}ms"
        return f"{self.key}:err<{self.max_error_rate * 100:g}%"


def parse_slo(text: str) -> tuple[Objective, ...]:
    """Parse a ``REPRO_SLO`` string into objectives.

    Raises :class:`ObservabilityError` on malformed input; an empty or
    whitespace-only string parses to no objectives.
    """
    objectives: list[Objective] = []
    for group in filter(None, (g.strip() for g in text.split(";"))):
        key, sep, conditions = group.partition(":")
        key = key.strip()
        if not sep or not key:
            raise ObservabilityError(
                f"bad SLO group {group!r}: expected 'key:cond[,cond...]'",
            )
        parsed_any = False
        for condition in filter(None, (c.strip() for c in conditions.split(","))):
            match = _CONDITION_RE.match(condition)
            if match is None:
                raise ObservabilityError(
                    f"bad SLO condition {condition!r} for key {key!r}: "
                    "expected 'pNN<THRESHOLDms' or 'err<RATE%'",
                )
            if match.group("quantile") is not None:
                quantile = float(match.group("quantile")) / 100.0
                if not 0.0 < quantile < 1.0:
                    raise ObservabilityError(
                        f"bad SLO quantile in {condition!r}: "
                        "expected 0 < pNN < 100",
                    )
                objectives.append(Objective(
                    key=key,
                    kind="latency",
                    quantile=quantile,
                    threshold_ms=float(match.group("ms")),
                ))
            else:
                objectives.append(Objective(
                    key=key,
                    kind="error-rate",
                    max_error_rate=float(match.group("rate")) / 100.0,
                ))
            parsed_any = True
        if not parsed_any:
            raise ObservabilityError(
                f"bad SLO group {group!r}: no conditions after {key!r}:",
            )
    return tuple(objectives)


class _Slice:
    """One time slice of a rolling window (mutated under the window lock)."""

    __slots__ = ("index", "buckets", "count", "errors", "sum")

    def __init__(self, n_buckets: int) -> None:
        self.index = -1
        self.buckets = [0] * n_buckets
        self.count = 0
        self.errors = 0
        self.sum = 0.0

    def reset(self, index: int) -> None:
        self.index = index
        for i in range(len(self.buckets)):
            self.buckets[i] = 0
        self.count = 0
        self.errors = 0
        self.sum = 0.0


class RollingWindow:
    """A ring of fixed-bucket latency slices with error counting.

    Reuses the PR 6 histogram layout (sorted ``le`` bucket bounds plus an
    implicit ``+Inf`` overflow) but rotates through ``slices`` time
    slices of ``slice_seconds`` each, so a snapshot only ever covers the
    last ``slices * slice_seconds`` seconds.  ``clock`` is injectable for
    deterministic tests.
    """

    def __init__(
        self,
        bounds: Sequence[float] = DEFAULT_MS_BUCKETS,
        slices: int = DEFAULT_SLICES,
        slice_seconds: float = DEFAULT_SLICE_SECONDS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        cleaned = tuple(float(b) for b in bounds)
        if not cleaned or list(cleaned) != sorted(cleaned):
            raise ObservabilityError("window buckets must be non-empty and sorted")
        if slices < 2:
            raise ObservabilityError("a rolling window needs at least 2 slices")
        if slice_seconds <= 0:
            raise ObservabilityError("slice_seconds must be positive")
        self.bounds = cleaned
        self.slices = slices
        self.slice_seconds = float(slice_seconds)
        self._clock = clock
        self._epoch = clock()
        self._lock = threading.Lock()
        # One extra non-cumulative slot per slice for the +Inf overflow.
        self._slots = [_Slice(len(cleaned) + 1) for _ in range(slices)]

    def _slice_index(self) -> int:
        return int((self._clock() - self._epoch) / self.slice_seconds)

    def observe(self, ms: float, error: bool = False) -> None:
        self.observe_at(self._clock(), ms, error)

    def observe_at(self, timestamp: float, ms: float, error: bool = False) -> None:
        """Record an observation made at ``timestamp`` (the window
        clock's timebase) — the drain target for buffered tracking."""
        index = int((timestamp - self._epoch) / self.slice_seconds)
        bucket = bisect.bisect_left(self.bounds, ms)
        with self._lock:
            slot = self._slots[index % self.slices]
            if slot.index > index:
                return  # slice already recycled for a newer generation
            if slot.index != index:
                slot.reset(index)
            slot.buckets[bucket] += 1
            slot.count += 1
            slot.sum += ms
            if error:
                slot.errors += 1

    def snapshot(self) -> dict:
        """Merged counts across the live slices, histogram-shaped.

        ``buckets`` is cumulative ``[bound, count]`` pairs exactly like
        :attr:`repro.obs.metrics.Histogram.value`, so renderers and
        quantile logic are shared.
        """
        index = self._slice_index()
        oldest_live = index - self.slices + 1
        merged = [0] * (len(self.bounds) + 1)
        count = errors = 0
        total = 0.0
        with self._lock:
            for slot in self._slots:
                if not oldest_live <= slot.index <= index:
                    continue
                for i, value in enumerate(slot.buckets):
                    merged[i] += value
                count += slot.count
                errors += slot.errors
                total += slot.sum
        cumulative: list[list[float | int]] = []
        running = 0
        for bound, raw in zip(self.bounds, merged):
            running += raw
            cumulative.append([bound, running])
        return {
            "buckets": cumulative,
            "sum": total,
            "count": count,
            "errors": errors,
            "error_rate": (errors / count) if count else 0.0,
            "window_seconds": self.slices * self.slice_seconds,
        }

    def quantile(self, q: float, snapshot: dict | None = None) -> float | None:
        """Conservative quantile estimate: the upper bound of the bucket
        holding the ``q``-th observation.  ``inf`` when it landed in the
        overflow bucket; ``None`` on an empty window."""
        if not 0.0 < q <= 1.0:
            raise ObservabilityError("quantile must be in (0, 1]")
        snap = snapshot or self.snapshot()
        count = snap["count"]
        if not count:
            return None
        rank = max(1, -(-int(q * count * 1_000_000) // 1_000_000))
        rank = min(rank, count)
        for bound, cum in snap["buckets"]:
            if cum >= rank:
                return bound
        return float("inf")

    def observe_bulk(
        self,
        timestamp: float,
        samples: Sequence[float],
        errors: int = 0,
    ) -> None:
        """Merge a drained lane into the slice holding ``timestamp``:
        bucket counts are accumulated locally first, so the lock is held
        once per batch instead of once per event."""
        if not samples:
            return
        index = int((timestamp - self._epoch) / self.slice_seconds)
        bounds = self.bounds
        local = [0] * (len(bounds) + 1)
        find_bucket = bisect.bisect_left
        total = 0.0
        for ms in samples:
            local[find_bucket(bounds, ms)] += 1
            total += ms
        with self._lock:
            slot = self._slots[index % self.slices]
            if slot.index > index:
                return  # slice already recycled for a newer generation
            if slot.index != index:
                slot.reset(index)
            buckets = slot.buckets
            for position, value in enumerate(local):
                if value:
                    buckets[position] += value
            slot.count += len(samples)
            slot.sum += total
            slot.errors += errors

    def fraction_within(
        self, threshold_ms: float, snapshot: dict | None = None,
    ) -> float | None:
        """Fraction of observations ``<= threshold_ms`` (bucket-resolved;
        conservative when the threshold falls between bounds)."""
        snap = snapshot or self.snapshot()
        count = snap["count"]
        if not count:
            return None
        within = 0
        for bound, cum in snap["buckets"]:
            if bound <= threshold_ms:
                within = cum
            else:
                break
        return within / count


def _objective_status(objective: Objective, window: RollingWindow | None) -> dict:
    """Attainment + burn rate for one objective over one window."""
    status: dict = {
        "objective": objective.describe(),
        "key": objective.key,
        "kind": objective.kind,
    }
    snap = window.snapshot() if window is not None else None
    count = snap["count"] if snap else 0
    status["events"] = count
    if objective.kind == "latency":
        status["quantile"] = objective.quantile
        status["threshold_ms"] = objective.threshold_ms
        if not count:
            status.update(attained_ms=None, ok=True, burn_rate=0.0)
            return status
        attained = window.quantile(objective.quantile, snap)
        frac_ok = window.fraction_within(objective.threshold_ms, snap)
        budget = 1.0 - objective.quantile
        burn = (1.0 - frac_ok) / budget if budget > 0 else 0.0
        status.update(
            attained_ms=attained,
            ok=frac_ok >= objective.quantile,
            burn_rate=round(burn, 4),
        )
    else:
        status["max_error_rate"] = objective.max_error_rate
        if not count:
            status.update(error_rate=0.0, ok=True, burn_rate=0.0)
            return status
        rate = snap["error_rate"]
        target = objective.max_error_rate
        burn = (rate / target) if target > 0 else (0.0 if not rate else float("inf"))
        status.update(
            error_rate=round(rate, 6),
            ok=rate <= target,
            burn_rate=round(burn, 4),
        )
    return status


class SloTracker:
    """Per-key rolling windows plus the configured objectives.

    Keys are route names (``count``, ``task``) on the service side and
    task kinds (``hom-count``, ``analyze``) on the executor side; the two
    namespaces share one window space, which is deliberate — an SLO on
    ``analyze`` covers the task kind and the route alike.
    """

    def __init__(
        self,
        objectives: Iterable[Objective] = (),
        slices: int = DEFAULT_SLICES,
        slice_seconds: float = DEFAULT_SLICE_SECONDS,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._lock = threading.Lock()
        self._windows: dict[str, RollingWindow] = {}
        self._objectives: tuple[Objective, ...] = tuple(objectives)
        self._slices = slices
        self._slice_seconds = slice_seconds
        self._clock = clock
        self.enabled = True
        # Hot-path lanes: key -> plain list of latency values, appended
        # without a lock (list.append is atomic under the GIL) and
        # drained by _flush().  Batch timestamp and error counts live in
        # side dicts only touched on first-event-of-batch / on error.
        self._lanes: dict[str, list[float]] = {}
        self._lane_started: dict[str, float] = {}
        self._lane_errors: dict[str, int] = {}

    # ------------------------------------------------------------------
    # configuration
    # ------------------------------------------------------------------
    @property
    def objectives(self) -> tuple[Objective, ...]:
        return self._objectives

    def set_objectives(
        self, objectives: Iterable[Objective],
    ) -> tuple[Objective, ...]:
        """Swap the objective set; returns the previous one.

        Existing windows keep their observations — only the judgement
        layer changes.  New keys named by the objectives get windows
        whose bucket bounds include the objective thresholds, so
        attainment is measured exactly at the target boundary.
        """
        with self._lock:
            previous = self._objectives
            self._objectives = tuple(objectives)
        return previous

    def _bounds_for(self, key: str) -> tuple[float, ...]:
        extra = {
            o.threshold_ms
            for o in self._objectives
            if o.key == key and o.threshold_ms is not None
        }
        if not extra:
            return DEFAULT_MS_BUCKETS
        return tuple(sorted(set(DEFAULT_MS_BUCKETS) | extra))

    def _ensure_window(self, key: str) -> RollingWindow:
        with self._lock:
            window = self._windows.get(key)
            if window is None:
                window = RollingWindow(
                    bounds=self._bounds_for(key),
                    slices=self._slices,
                    slice_seconds=self._slice_seconds,
                    clock=self._clock,
                )
                self._windows[key] = window
            return window

    # ------------------------------------------------------------------
    # observation + reporting
    # ------------------------------------------------------------------
    def observe(self, key: str, ms: float, error: bool = False) -> None:
        if not self.enabled:
            return
        lane = self._lanes.get(key)
        if lane is None:
            lane = self._make_lane(key)
        if not lane:
            self._lane_started[key] = self._clock()
        lane.append(ms)
        if error:
            self._lane_errors[key] = self._lane_errors.get(key, 0) + 1
        if len(lane) >= _FLUSH_THRESHOLD:
            self._flush()

    def _make_lane(self, key: str) -> list[float]:
        with self._lock:
            return self._lanes.setdefault(key, [])

    def _flush(self) -> None:
        """Drain every lane into its rolling window.

        Appends are lock-free, so the lane swap below can race one: an
        appender that loaded the old list right before the swap lands
        its event there, and it is drained with the batch unless it
        arrives after ``observe_bulk`` consumed the list — a
        nanosecond-wide window whose worst case is one lost sample in a
        statistical aggregate.
        """
        lanes = self._lanes
        clock = self._clock
        with self._lock:
            drained = []
            for key, lane in lanes.items():
                if not lane:
                    continue
                lanes[key] = []
                drained.append((
                    key,
                    lane,
                    self._lane_started.get(key, clock()),
                    self._lane_errors.pop(key, 0),
                ))
        for key, samples, started, errors in drained:
            window = self._windows.get(key)
            if window is None:
                window = self._ensure_window(key)
            window.observe_bulk(started, samples, errors)

    def window(self, key: str) -> RollingWindow | None:
        self._flush()
        return self._windows.get(key)

    def reset(self) -> None:
        """Drop all windows (tests and the bench harness only)."""
        with self._lock:
            self._windows.clear()
            self._lanes.clear()
            self._lane_started.clear()
            self._lane_errors.clear()

    def report(self) -> dict:
        """Objective attainment + per-window summaries, JSON-able."""
        self._flush()
        with self._lock:
            windows = dict(self._windows)
            objectives = self._objectives
        statuses = [
            _objective_status(objective, windows.get(objective.key))
            for objective in objectives
        ]
        summaries = {}
        for key in sorted(windows):
            snap = windows[key].snapshot()
            summaries[key] = {
                "count": snap["count"],
                "errors": snap["errors"],
                "error_rate": round(snap["error_rate"], 6),
                "p50_ms": windows[key].quantile(0.50, snap),
                "p99_ms": windows[key].quantile(0.99, snap),
                "window_seconds": snap["window_seconds"],
            }
        return {
            "enabled": self.enabled,
            "objectives": statuses,
            "windows": summaries,
        }

    def burn_rates(self) -> dict[str, float]:
        """``describe() -> burn rate`` for every configured objective."""
        return {
            status["objective"]: status["burn_rate"]
            for status in self.report()["objectives"]
        }

    def metric_families(self) -> list[tuple[str, dict]]:
        """Scrape-time collector: burn-rate and attainment gauges."""
        report = self.report()
        if not report["objectives"]:
            return []
        burn = []
        ok = []
        for status in report["objectives"]:
            labels = {"key": status["key"], "objective": status["objective"]}
            burn.append((labels, status["burn_rate"]))
            ok.append((labels, 1 if status["ok"] else 0))
        return [
            family_snapshot(
                "repro_slo_burn_rate", "gauge", burn,
                help="Error-budget burn rate per objective (1.0 = on budget)",
            ),
            family_snapshot(
                "repro_slo_ok", "gauge", ok,
                help="1 when the objective is currently met over its window",
            ),
        ]


# ----------------------------------------------------------------------
# process-global tracker, seeded from REPRO_SLO
# ----------------------------------------------------------------------

def _objectives_from_env() -> tuple[Objective, ...]:
    raw = os.environ.get("REPRO_SLO", "")
    try:
        return parse_slo(raw)
    except ObservabilityError:
        # A malformed env var must never break library import; the CLI
        # and configure_slo() surface parse errors loudly instead.
        return ()


_tracker = SloTracker(objectives=_objectives_from_env())
registry().register_collector(_tracker.metric_families)


def tracker() -> SloTracker:
    """The process-global SLO tracker."""
    return _tracker


def observe_slo(key: str, ms: float, error: bool = False) -> None:
    """Hot-path observation into the global tracker: a no-op when
    tracking is disabled, one allocation-free lane append when on."""
    tracked = _tracker
    if not tracked.enabled:
        return
    lane = tracked._lanes.get(key)
    if lane is None:
        lane = tracked._make_lane(key)
    if not lane:
        tracked._lane_started[key] = tracked._clock()
    lane.append(ms)
    if error:
        tracked._lane_errors[key] = tracked._lane_errors.get(key, 0) + 1
    if len(lane) >= _FLUSH_THRESHOLD:
        tracked._flush()


def set_slo_tracking(enabled: bool) -> bool:
    """Toggle global SLO observation; returns the previous setting."""
    previous = _tracker.enabled
    _tracker.enabled = bool(enabled)
    return previous


def configure_slo(spec: str) -> tuple[Objective, ...]:
    """Parse ``spec`` and install it on the global tracker; returns the
    previously configured objectives.  Raises on malformed specs."""
    return _tracker.set_objectives(parse_slo(spec))


def slo_report() -> dict:
    """The global tracker's :meth:`SloTracker.report`."""
    return _tracker.report()
