"""Runtime health probes: liveness/readiness verdicts over live telemetry.

A *probe* is a named zero-argument callable returning a
:class:`ProbeResult` — ``ok``, ``degraded``, or ``failing`` plus a
structured reason and free-form data.  A :class:`HealthRegistry`
aggregates probes with worst-status-wins semantics and exports each
probe's status as the ``repro_health_probe_status`` gauge (0/1/2).

Three process-wide monitors live here because they are useful to any
embedder, not just the HTTP service:

* :class:`EventLoopLagMonitor` — a daemon thread that periodically posts
  a timestamped callback onto an asyncio loop via
  ``call_soon_threadsafe`` and measures how long the loop takes to run
  it.  A blocked loop shows up as rising lag *even while blocked*,
  because the probe counts the still-pending ping's age.
* :class:`GcPauseTracker` — ``gc.callbacks`` start/stop pairing that
  records last/max/total collector pause.
* :func:`rss_bytes` + :class:`MemoryWatermarkProbe` — current RSS from
  ``/proc/self/statm`` (``resource`` fallback), optional tracemalloc
  figures when tracing is active, and a high-water mark with
  degraded/failing thresholds.

The service wires these plus its own scheduler/store/journal probes into
``GET /healthz`` and ``GET /readyz`` (see ``service/server.py``); the
probes themselves never import the service layer.
"""

from __future__ import annotations

import gc
import os
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import ObservabilityError
from repro.obs.metrics import family_snapshot

__all__ = [
    "OK",
    "DEGRADED",
    "FAILING",
    "STATUS_ORDER",
    "ProbeResult",
    "ok",
    "degraded",
    "failing",
    "HealthReport",
    "HealthRegistry",
    "EventLoopLagMonitor",
    "GcPauseTracker",
    "MemoryWatermarkProbe",
    "rss_bytes",
]

OK = "ok"
DEGRADED = "degraded"
FAILING = "failing"

# Worst-status-wins aggregation order, also the gauge encoding.
STATUS_ORDER = {OK: 0, DEGRADED: 1, FAILING: 2}


@dataclass(frozen=True)
class ProbeResult:
    """One probe's verdict: a status, a human reason, and data."""

    status: str
    reason: str | None = None
    data: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.status not in STATUS_ORDER:
            raise ObservabilityError(
                f"unknown probe status {self.status!r}; "
                f"expected one of {sorted(STATUS_ORDER)}",
            )

    def to_dict(self) -> dict:
        payload: dict = {"status": self.status}
        if self.reason:
            payload["reason"] = self.reason
        if self.data:
            payload["data"] = dict(self.data)
        return payload


def ok(reason: str | None = None, **data: object) -> ProbeResult:
    return ProbeResult(OK, reason, data)


def degraded(reason: str, **data: object) -> ProbeResult:
    return ProbeResult(DEGRADED, reason, data)


def failing(reason: str, **data: object) -> ProbeResult:
    return ProbeResult(FAILING, reason, data)


@dataclass(frozen=True)
class HealthReport:
    """Aggregated verdict over a set of probes."""

    status: str
    probes: Mapping[str, ProbeResult]

    @property
    def reasons(self) -> dict[str, str]:
        """Probe name → reason for every non-ok probe."""
        return {
            name: result.reason or result.status
            for name, result in self.probes.items()
            if result.status != OK
        }

    def to_dict(self) -> dict:
        return {
            "status": self.status,
            "probes": {
                name: result.to_dict() for name, result in self.probes.items()
            },
            "reasons": self.reasons,
        }


class HealthRegistry:
    """Named probes aggregated worst-status-wins.

    A probe that raises is reported as ``failing`` with the exception in
    its reason — a broken probe must surface as unhealthy, never take
    the health endpoint down.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._probes: dict[str, Callable[[], ProbeResult]] = {}

    def register(self, name: str, probe: Callable[[], ProbeResult]) -> None:
        with self._lock:
            self._probes[name] = probe

    def unregister(self, name: str) -> None:
        with self._lock:
            self._probes.pop(name, None)

    def names(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(self._probes)

    def check(self, names: Sequence[str] | None = None) -> HealthReport:
        """Run the named probes (all by default) and aggregate."""
        with self._lock:
            if names is None:
                selected = list(self._probes.items())
            else:
                selected = [
                    (name, self._probes[name])
                    for name in names
                    if name in self._probes
                ]
        results: dict[str, ProbeResult] = {}
        worst = OK
        for name, probe in selected:
            try:
                result = probe()
            except Exception as error:  # noqa: BLE001 - see class docstring
                result = failing(
                    f"probe raised {type(error).__name__}: {error}",
                )
            results[name] = result
            if STATUS_ORDER[result.status] > STATUS_ORDER[worst]:
                worst = result.status
        return HealthReport(status=worst, probes=results)

    def metric_families(self) -> list[tuple[str, dict]]:
        """Scrape-time collector: per-probe status gauge (0/1/2)."""
        report = self.check()
        if not report.probes:
            return []
        return [
            family_snapshot(
                "repro_health_probe_status",
                "gauge",
                [
                    ({"probe": name}, STATUS_ORDER[result.status])
                    for name, result in report.probes.items()
                ],
                help="Health probe status: 0=ok, 1=degraded, 2=failing",
            ),
        ]


class EventLoopLagMonitor:
    """Asyncio event-loop responsiveness watchdog, sampled off-loop.

    Every ``interval_s`` the daemon thread posts a no-op callback with
    ``call_soon_threadsafe`` and measures how long the loop takes to run
    it.  While a ping is still pending, :meth:`probe` reports its age as
    the effective lag, so a fully wedged loop is visible immediately —
    crucial, since a wedged loop cannot serve ``/healthz`` itself but
    in-process supervisors and tests still can ask.
    """

    def __init__(
        self,
        interval_s: float = 0.25,
        degraded_ms: float = 100.0,
        failing_ms: float = 1000.0,
    ) -> None:
        self.interval_s = interval_s
        self.degraded_ms = degraded_ms
        self.failing_ms = failing_ms
        self._loop = None
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._state_lock = threading.Lock()
        self.last_lag_ms: float | None = None
        self.max_lag_ms = 0.0
        self.samples = 0
        self._pending_since: float | None = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self, loop) -> None:
        if self.running:
            return
        self._loop = loop
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-loop-lag", daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=2.0)
        self._thread = None
        with self._state_lock:
            self._pending_since = None

    def _record(self, lag_ms: float) -> None:
        with self._state_lock:
            self.last_lag_ms = lag_ms
            self.max_lag_ms = max(self.max_lag_ms, lag_ms)
            self.samples += 1
            self._pending_since = None

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            done = threading.Event()
            started = time.perf_counter()

            def _pong() -> None:
                self._record((time.perf_counter() - started) * 1000.0)
                done.set()

            with self._state_lock:
                self._pending_since = started
            try:
                self._loop.call_soon_threadsafe(_pong)
            except RuntimeError:
                # Loop closed under us: the owner is shutting down.
                with self._state_lock:
                    self._pending_since = None
                return
            # Wait generously, but in small increments that also watch
            # the stop flag — stop() may be called from the loop thread
            # itself, which cannot run _pong while it joins this thread.
            deadline = time.perf_counter() + max(self.failing_ms / 1000.0 * 2, 2.0)
            while not done.is_set() and not self._stop.is_set():
                if time.perf_counter() >= deadline:
                    break
                done.wait(timeout=0.05)

    def current_lag_ms(self) -> float | None:
        """Last measured lag, or the age of a still-pending ping if that
        is worse."""
        with self._state_lock:
            lag = self.last_lag_ms
            pending = self._pending_since
        if pending is not None:
            pending_ms = (time.perf_counter() - pending) * 1000.0
            if lag is None or pending_ms > lag:
                return pending_ms
        return lag

    def probe(self) -> ProbeResult:
        if not self.running:
            return ok("loop lag not monitored")
        lag = self.current_lag_ms()
        if lag is None:
            return ok("no samples yet")
        data = {
            "lag_ms": round(lag, 3),
            "max_lag_ms": round(self.max_lag_ms, 3),
            "samples": self.samples,
        }
        if lag >= self.failing_ms:
            return failing(f"event loop lag {lag:.0f}ms", **data)
        if lag >= self.degraded_ms:
            return degraded(f"event loop lag {lag:.0f}ms", **data)
        return ok(None, **data)


class GcPauseTracker:
    """Garbage-collector pause tracking via ``gc.callbacks``."""

    def __init__(
        self,
        degraded_ms: float = 50.0,
        failing_ms: float = 500.0,
    ) -> None:
        self.degraded_ms = degraded_ms
        self.failing_ms = failing_ms
        self._started_at: float | None = None
        self.collections = 0
        self.last_pause_ms: float | None = None
        self.max_pause_ms = 0.0
        self.total_pause_ms = 0.0

    @property
    def installed(self) -> bool:
        return self._callback in gc.callbacks

    def install(self) -> None:
        if not self.installed:
            gc.callbacks.append(self._callback)

    def uninstall(self) -> None:
        try:
            gc.callbacks.remove(self._callback)
        except ValueError:
            pass
        self._started_at = None

    def _callback(self, phase: str, info: dict) -> None:
        # start/stop run back-to-back on the collecting thread, so a
        # single scalar timestamp is enough.
        if phase == "start":
            self._started_at = time.perf_counter()
        elif phase == "stop" and self._started_at is not None:
            pause_ms = (time.perf_counter() - self._started_at) * 1000.0
            self._started_at = None
            self.collections += 1
            self.last_pause_ms = pause_ms
            self.max_pause_ms = max(self.max_pause_ms, pause_ms)
            self.total_pause_ms += pause_ms

    def probe(self) -> ProbeResult:
        if not self.installed:
            return ok("gc pauses not tracked")
        data = {
            "collections": self.collections,
            "last_pause_ms": (
                round(self.last_pause_ms, 3)
                if self.last_pause_ms is not None else None
            ),
            "max_pause_ms": round(self.max_pause_ms, 3),
            "total_pause_ms": round(self.total_pause_ms, 3),
        }
        worst = self.max_pause_ms
        if worst >= self.failing_ms:
            return failing(f"gc pause reached {worst:.0f}ms", **data)
        if worst >= self.degraded_ms:
            return degraded(f"gc pause reached {worst:.0f}ms", **data)
        return ok(None, **data)


def rss_bytes() -> int | None:
    """Current resident set size, or ``None`` when unknowable."""
    try:
        with open("/proc/self/statm", "rb") as handle:
            fields = handle.read().split()
        return int(fields[1]) * os.sysconf("SC_PAGE_SIZE")
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # ru_maxrss is KiB on Linux, bytes on macOS; either way it is a
        # peak, which over-reports — acceptable for a fallback.
        return peak * 1024 if os.uname().sysname != "Darwin" else peak
    except Exception:  # noqa: BLE001 - platform-specific; stay best-effort
        return None


class MemoryWatermarkProbe:
    """RSS high-water-mark probe with optional tracemalloc detail."""

    def __init__(
        self,
        degraded_mb: float = 2048.0,
        failing_mb: float = 4096.0,
    ) -> None:
        self.degraded_mb = degraded_mb
        self.failing_mb = failing_mb
        self.peak_rss_bytes = 0

    def probe(self) -> ProbeResult:
        rss = rss_bytes()
        if rss is None:
            return ok("rss not measurable on this platform")
        self.peak_rss_bytes = max(self.peak_rss_bytes, rss)
        rss_mb = rss / (1024 * 1024)
        data: dict[str, object] = {
            "rss_mb": round(rss_mb, 1),
            "peak_rss_mb": round(self.peak_rss_bytes / (1024 * 1024), 1),
        }
        try:
            import tracemalloc

            if tracemalloc.is_tracing():
                current, peak = tracemalloc.get_traced_memory()
                data["tracemalloc_current_mb"] = round(current / (1024 * 1024), 1)
                data["tracemalloc_peak_mb"] = round(peak / (1024 * 1024), 1)
        except Exception:  # noqa: BLE001 - detail only, never fail the probe
            pass
        if rss_mb >= self.failing_mb:
            return failing(f"rss {rss_mb:.0f}MB over {self.failing_mb:.0f}MB", **data)
        if rss_mb >= self.degraded_mb:
            return degraded(
                f"rss {rss_mb:.0f}MB over {self.degraded_mb:.0f}MB", **data,
            )
        return ok(None, **data)
