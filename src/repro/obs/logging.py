"""Structured logging for the ``repro`` stack, on stdlib ``logging``.

Every subsystem logs through ``get_logger("scheduler")`` → the
``repro.scheduler`` logger, all children of the single ``repro`` root
logger.  :func:`configure_logging` installs one stderr handler on that
root with either a ``key=value`` line formatter (greppable, the default)
or a JSON-lines formatter, and is driven by the ``REPRO_LOG``
environment variable:

    REPRO_LOG=debug           # kv lines at DEBUG
    REPRO_LOG=info,json       # JSON lines at INFO
    REPRO_LOG=off             # disable repro logging entirely

Unset, the ``repro`` root gets a ``NullHandler`` and stays silent —
importing the library never spams a host application's logs.

:func:`log_event` is the structured emit helper: a short machine-stable
``event`` name plus arbitrary fields, with the current trace id (if a
span is open in this context) attached automatically so log lines can be
joined against traces.
"""

from __future__ import annotations

import json
import logging
import os
from typing import Any

from repro.obs.trace import current_trace_id

__all__ = [
    "get_logger",
    "configure_logging",
    "configure_from_env",
    "log_event",
]

ROOT_NAME = "repro"

_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "warn": logging.WARNING,
    "error": logging.ERROR,
}


class KeyValueFormatter(logging.Formatter):
    """``ts=... level=... logger=... event=... k=v ...`` single lines."""

    def format(self, record: logging.LogRecord) -> str:
        fields: dict = getattr(record, "repro_fields", None) or {}
        parts = [
            f"ts={self.formatTime(record, '%Y-%m-%dT%H:%M:%S')}",
            f"level={record.levelname.lower()}",
            f"logger={record.name}",
            f"event={record.getMessage()}",
        ]
        for key in sorted(fields):
            parts.append(f"{key}={_kv_value(fields[key])}")
        return " ".join(parts)


class JsonFormatter(logging.Formatter):
    """One JSON object per line; unserialisable values fall back to repr."""

    def format(self, record: logging.LogRecord) -> str:
        fields: dict = getattr(record, "repro_fields", None) or {}
        payload = {
            "ts": self.formatTime(record, "%Y-%m-%dT%H:%M:%S"),
            "level": record.levelname.lower(),
            "logger": record.name,
            "event": record.getMessage(),
        }
        payload.update(fields)
        return json.dumps(payload, sort_keys=True, default=repr)


def _kv_value(value: Any) -> str:
    text = str(value)
    if " " in text or "=" in text or '"' in text:
        return json.dumps(text)
    return text


def get_logger(subsystem: str = "") -> logging.Logger:
    """The per-subsystem logger, e.g. ``get_logger("engine")``."""
    name = f"{ROOT_NAME}.{subsystem}" if subsystem else ROOT_NAME
    return logging.getLogger(name)


def configure_logging(level: str = "info", fmt: str = "kv") -> logging.Logger:
    """Install one stderr handler on the ``repro`` root logger.

    Idempotent: reconfiguring replaces the previously installed handler
    rather than stacking a second one.
    """
    if level not in _LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; expected one of {sorted(_LEVELS)}"
        )
    if fmt not in ("kv", "json"):
        raise ValueError(f"unknown log format {fmt!r}; expected 'kv' or 'json'")
    root = logging.getLogger(ROOT_NAME)
    for handler in list(root.handlers):
        root.removeHandler(handler)
    handler = logging.StreamHandler()
    handler.setFormatter(JsonFormatter() if fmt == "json" else KeyValueFormatter())
    root.addHandler(handler)
    root.setLevel(_LEVELS[level])
    root.propagate = False
    return root


def configure_from_env(env: str | None = None) -> logging.Logger:
    """Apply the ``REPRO_LOG`` setting (``level[,format]`` or ``off``)."""
    raw = os.environ.get("REPRO_LOG", "") if env is None else env
    root = logging.getLogger(ROOT_NAME)
    spec = raw.strip().lower()
    if not spec or spec in ("off", "0", "false", "none"):
        if not root.handlers:
            root.addHandler(logging.NullHandler())
        return root
    level, fmt = "info", "kv"
    for part in filter(None, (p.strip() for p in spec.split(","))):
        if part in _LEVELS:
            level = part
        elif part in ("kv", "json"):
            fmt = part
    return configure_logging(level, fmt)


def log_event(
    logger: logging.Logger,
    level: int,
    event: str,
    **fields: Any,
) -> None:
    """Emit a structured event, auto-attaching the current trace id."""
    if not logger.isEnabledFor(level):
        return
    trace_id = current_trace_id()
    if trace_id is not None and "trace_id" not in fields:
        fields["trace_id"] = trace_id
    logger.log(level, event, extra={"repro_fields": fields})


configure_from_env()
