"""Process-global metrics: counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` holds *families* — a metric name plus a fixed
label schema — and each family holds one child instrument per label-value
combination.  Everything is stdlib and thread-safe: counters and gauges
update an int/float under a per-child lock, histograms update fixed
cumulative buckets, and snapshots are taken under the registry lock so a
scrape never observes a half-registered family.

Two complementary ways to get numbers in:

* **direct instruments** — ``registry().counter("repro_tasks_total",
  labelnames=("kind",)).labels(kind="hom-count").inc()`` — for events not
  counted anywhere else (HTTP requests, task runs, queue waits);
* **collectors** — callables registered with
  :meth:`MetricsRegistry.register_collector` that are invoked at snapshot
  time and return family snapshots built from statistics the subsystems
  already maintain (:class:`~repro.engine.cache.CacheStats`,
  :class:`~repro.service.scheduler.SchedulerStats`,
  :class:`~repro.dynamic.graph.DynamicStats`, …).  Collectors add **zero**
  hot-path cost: the engine's count path keeps its existing counters and
  the registry merely re-exports them when ``/metrics`` is scraped.

Two stable render formats: :meth:`MetricsRegistry.snapshot` (JSON-able
dict, served by ``GET /metrics?format=json``) and
:meth:`MetricsRegistry.render_prometheus` (Prometheus text exposition,
served by ``GET /metrics``).  Samples are emitted in sorted label order,
so identical state always renders byte-identically.
"""

from __future__ import annotations

import threading
from typing import Callable, Iterable, Mapping, Sequence

from repro.errors import ObservabilityError

# Default latency buckets, in milliseconds: spans sub-100us dispatch up to
# multi-second cold compiles.
DEFAULT_MS_BUCKETS = (
    0.05, 0.1, 0.5, 1.0, 5.0, 10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0,
)

# Small-integer buckets for size-ish histograms (batch sizes, queue depths).
DEFAULT_SIZE_BUCKETS = (1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 500.0)

_KINDS = ("counter", "gauge", "histogram")


def _format_value(value) -> str:
    """Prometheus sample value: ints without a trailing ``.0``."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _escape_label(value) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ObservabilityError("counters only go up; use a gauge")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (or be set outright)."""

    __slots__ = ("_lock", "_value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    def inc(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Histogram:
    """Fixed cumulative buckets plus sum and count.

    Bucket semantics follow Prometheus: an observation lands in every
    bucket whose upper bound is ``>=`` the value (``le`` — *less than or
    equal*), and the implicit ``+Inf`` bucket equals the total count.
    """

    __slots__ = ("_lock", "bounds", "_buckets", "_sum", "_count")

    def __init__(self, bounds: Sequence[float]) -> None:
        cleaned = tuple(float(b) for b in bounds)
        if not cleaned:
            raise ObservabilityError("histogram needs at least one bucket")
        if list(cleaned) != sorted(cleaned):
            raise ObservabilityError("histogram buckets must be sorted")
        self._lock = threading.Lock()
        self.bounds = cleaned
        self._buckets = [0] * len(cleaned)
        self._sum = 0.0
        self._count = 0

    def observe(self, value: int | float) -> None:
        with self._lock:
            self._sum += value
            self._count += 1
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    self._buckets[index] += 1
                    break

    @property
    def value(self) -> dict:
        """Cumulative bucket counts keyed by bound, plus sum/count."""
        with self._lock:
            raw = list(self._buckets)
            total_sum, total_count = self._sum, self._count
        cumulative: list[int] = []
        running = 0
        for count in raw:
            running += count
            cumulative.append(running)
        return {
            "buckets": [
                [bound, count]
                for bound, count in zip(self.bounds, cumulative)
            ],
            "sum": total_sum,
            "count": total_count,
        }


_CHILD_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """One metric name + label schema, holding per-label-value children."""

    def __init__(
        self,
        name: str,
        kind: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ) -> None:
        if kind not in _KINDS:
            raise ObservabilityError(f"unknown metric kind {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        self.labelnames = tuple(labelnames)
        self._buckets = tuple(buckets) if buckets is not None else None
        self._lock = threading.Lock()
        self._children: dict[tuple, object] = {}
        if not self.labelnames:
            self._default = self._make_child()
            self._children[()] = self._default
        else:
            self._default = None

    def _make_child(self):
        if self.kind == "histogram":
            return Histogram(self._buckets or DEFAULT_MS_BUCKETS)
        return _CHILD_TYPES[self.kind]()

    def labels(self, **labelvalues):
        """The child instrument for one label-value combination."""
        if len(labelvalues) != len(self.labelnames) or any(
            name not in labelvalues for name in self.labelnames
        ):
            raise ObservabilityError(
                f"metric {self.name!r} takes exactly the labels "
                f"{self.labelnames}, got {sorted(labelvalues)}",
            )
        key = tuple(str(labelvalues[name]) for name in self.labelnames)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self._make_child()
                    self._children[key] = child
        return child

    # unlabelled families proxy straight to their single child ---------
    def inc(self, amount: int | float = 1) -> None:
        self._require_default().inc(amount)

    def dec(self, amount: int | float = 1) -> None:
        self._require_default().dec(amount)

    def set(self, value: int | float) -> None:
        self._require_default().set(value)

    def observe(self, value: int | float) -> None:
        self._require_default().observe(value)

    @property
    def value(self):
        return self._require_default().value

    def _require_default(self):
        if self._default is None:
            raise ObservabilityError(
                f"metric {self.name!r} is labelled by {self.labelnames}; "
                "call .labels(...) first",
            )
        return self._default

    def snapshot(self) -> dict:
        with self._lock:
            children = list(self._children.items())
        samples = [
            {
                "labels": dict(zip(self.labelnames, key)),
                "value": child.value,
            }
            for key, child in sorted(children, key=lambda item: item[0])
        ]
        return {
            "kind": self.kind,
            "help": self.help,
            "samples": samples,
        }


def family_snapshot(
    name: str,
    kind: str,
    samples: Iterable[tuple[Mapping[str, object], int | float]],
    help: str = "",
) -> tuple[str, dict]:
    """Build a collector-produced family in the snapshot shape.

    ``samples`` is an iterable of ``(labels, value)`` pairs; collectors
    return a list of these so scrape-time state (cache stats, queue
    depths) exports without any hot-path instrumentation.
    """
    return name, {
        "kind": kind,
        "help": help,
        "samples": [
            {"labels": dict(labels), "value": value}
            for labels, value in samples
        ],
    }


class MetricsRegistry:
    """A named set of metric families plus scrape-time collectors."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}
        self._collectors: list[Callable[[], Iterable[tuple[str, dict]]]] = []

    # ------------------------------------------------------------------
    # family registration (idempotent per name)
    # ------------------------------------------------------------------
    def _family(
        self,
        name: str,
        kind: str,
        help: str,
        labelnames: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.labelnames != tuple(labelnames):
                    raise ObservabilityError(
                        f"metric {name!r} is already registered as a "
                        f"{family.kind} with labels {family.labelnames}",
                    )
                return family
            family = MetricFamily(
                name, kind, help=help, labelnames=labelnames, buckets=buckets,
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = (),
    ) -> MetricFamily:
        return self._family(name, "counter", help, labelnames)

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = (),
    ) -> MetricFamily:
        return self._family(name, "gauge", help, labelnames)

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_MS_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, "histogram", help, labelnames, buckets)

    # ------------------------------------------------------------------
    # collectors
    # ------------------------------------------------------------------
    def register_collector(
        self, collector: Callable[[], Iterable[tuple[str, dict]]],
    ) -> None:
        with self._lock:
            if collector not in self._collectors:
                self._collectors.append(collector)

    def unregister_collector(self, collector) -> None:
        with self._lock:
            if collector in self._collectors:
                self._collectors.remove(collector)

    # ------------------------------------------------------------------
    # scraping
    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """All families (direct + collected) as a stable JSON-able dict."""
        with self._lock:
            families = dict(self._families)
            collectors = list(self._collectors)
        report: dict[str, dict] = {
            name: family.snapshot() for name, family in families.items()
        }
        for collector in collectors:
            try:
                collected = list(collector())
            except Exception:  # noqa: BLE001 - a broken collector must
                continue       # never take the scrape endpoint down
            for name, family in collected:
                existing = report.get(name)
                if existing is None:
                    report[name] = {
                        "kind": family["kind"],
                        "help": family.get("help", ""),
                        "samples": list(family["samples"]),
                    }
                else:
                    existing["samples"].extend(family["samples"])
        return {name: report[name] for name in sorted(report)}

    def render_prometheus(self) -> str:
        """The snapshot in Prometheus text exposition format."""
        lines: list[str] = []
        for name, family in self.snapshot().items():
            if family.get("help"):
                lines.append(f"# HELP {name} {family['help']}")
            lines.append(f"# TYPE {name} {family['kind']}")
            for sample in family["samples"]:
                labels = sample["labels"]
                value = sample["value"]
                if family["kind"] == "histogram":
                    lines.extend(
                        self._render_histogram(name, labels, value),
                    )
                else:
                    lines.append(
                        f"{name}{self._render_labels(labels)} "
                        f"{_format_value(value)}",
                    )
        return "\n".join(lines) + "\n"

    @staticmethod
    def _render_labels(labels: Mapping[str, object], extra: str = "") -> str:
        parts = [
            f'{key}="{_escape_label(labels[key])}"' for key in sorted(labels)
        ]
        if extra:
            parts.append(extra)
        return "{" + ",".join(parts) + "}" if parts else ""

    @classmethod
    def _render_histogram(cls, name, labels, value) -> list[str]:
        lines = []
        for bound, count in value["buckets"]:
            extra = 'le="%s"' % _format_value(bound)
            lines.append(
                f"{name}_bucket{cls._render_labels(labels, extra)} {count}",
            )
        inf_labels = cls._render_labels(labels, 'le="+Inf"')
        lines.append(f"{name}_bucket{inf_labels} {value['count']}")
        lines.append(
            f"{name}_sum{cls._render_labels(labels)} "
            f"{_format_value(value['sum'])}",
        )
        lines.append(f"{name}_count{cls._render_labels(labels)} {value['count']}")
        return lines

    def reset(self) -> None:
        """Drop every family and collector (tests only)."""
        with self._lock:
            self._families.clear()
            self._collectors.clear()


_global_registry = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-global registry every subsystem instruments into."""
    return _global_registry
