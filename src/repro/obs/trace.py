"""Lightweight tracing: per-request span trees with monotonic timings.

A :class:`Span` is one timed operation; ``with span("engine.compile",
backend="dp"):`` opens a child of whatever span is current in this
context.  The current span propagates through :mod:`contextvars`, so

* ``asyncio`` tasks inherit the span that was current when the task was
  created (tasks copy their creation context);
* thread/worker-pool dispatches keep their parent trace when the callable
  is run inside :func:`contextvars.copy_context` — which the service
  scheduler does for every job, and :func:`bind_current_context` does for
  ad-hoc ``ThreadPoolExecutor.submit`` calls.

Every *root* span (no parent at entry) gets a process-unique ``trace_id``
and, on exit, may land in two bounded ring buffers: the recent *slow*
traces (duration over :func:`set_slow_threshold_ms`) capture every slow
root, while the recent ring keeps one in :func:`set_trace_sampling`
sub-threshold roots (default 1-in-8).  Sampling is what keeps retention
off the fast path — filling a ring on every call means evicting (and
touching) a stone-cold span allocated hundreds of calls ago, which costs
more than the tracing itself.  ``GET /traces`` and ``repro trace`` read
these buffers.

Tracing is a process switch (:func:`set_tracing`, honouring the
``REPRO_TRACE`` environment variable, default **on**).  Disabled spans
still time themselves — ``Result.elapsed_ms`` and the CLI's timing output
come from this one code path either way — but skip the contextvar
plumbing, tree building, and ring buffers, so the disabled cost is two
``perf_counter`` calls, same as the hand-rolled pairs they replaced.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import deque
from contextvars import ContextVar, Token, copy_context
from threading import get_ident
from time import perf_counter

__all__ = [
    "Span",
    "span",
    "leaf_span",
    "child_span",
    "current_span",
    "current_trace_id",
    "set_tracing",
    "tracing_enabled",
    "set_slow_threshold_ms",
    "slow_threshold_ms",
    "set_trace_sampling",
    "trace_sampling",
    "recent_traces",
    "slow_traces",
    "clear_traces",
    "span_to_dict",
    "render_span",
    "bind_current_context",
]

_current_span: ContextVar["Span | None"] = ContextVar(
    "repro_current_span", default=None,
)

_enabled = os.environ.get("REPRO_TRACE", "1").strip().lower() not in (
    "0", "false", "off", "no",
)

RECENT_LIMIT = 256
SLOW_LIMIT = 64
_slow_threshold_ms = 100.0
_slow_threshold_s = _slow_threshold_ms / 1000.0  # hot-path comparison unit
_recent_sample = 8  # keep 1-in-K sub-threshold roots in the recent ring
_sample_tick = itertools.count(1)

# deque.append is atomic under the GIL; no lock needed on the hot path.
_recent: deque = deque(maxlen=RECENT_LIMIT)
_slow: deque = deque(maxlen=SLOW_LIMIT)

# Pre-bound hot-path callables: Span.__enter__/__exit__ run once per task
# on the warm serving path, so every attribute lookup shaved here is a
# measurable slice of the <5% overhead budget (see benchmarks/bench_obs).
_cv_set = _current_span.set
_cv_reset = _current_span.reset
_MISSING = Token.MISSING
_recent_append = _recent.append
_slow_append = _slow.append

_trace_ids = itertools.count(1)
_trace_prefix = f"{os.getpid():x}"
_config_lock = threading.Lock()

def set_tracing(enabled: bool) -> bool:
    """Switch span-tree collection on/off; returns the previous setting."""
    global _enabled
    with _config_lock:
        previous = _enabled
        _enabled = bool(enabled)
    return previous


def tracing_enabled() -> bool:
    return _enabled


def set_slow_threshold_ms(threshold: float) -> float:
    """Root spans at least this slow land in the slow-trace ring."""
    global _slow_threshold_ms, _slow_threshold_s
    with _config_lock:
        previous = _slow_threshold_ms
        _slow_threshold_ms = float(threshold)
        _slow_threshold_s = _slow_threshold_ms / 1000.0
    return previous


def slow_threshold_ms() -> float:
    return _slow_threshold_ms


def set_trace_sampling(every: int) -> int:
    """Keep one in ``every`` sub-threshold root spans in the recent ring.

    ``1`` retains every trace (what tests want for determinism); the
    default of 8 amortises ring-buffer eviction to noise on warm serving
    paths.  Slow roots are always retained regardless.  Returns the
    previous setting.
    """
    global _recent_sample
    every = int(every)
    if every < 1:
        raise ValueError("trace sampling stride must be >= 1")
    with _config_lock:
        previous = _recent_sample
        _recent_sample = every
    return previous


def trace_sampling() -> int:
    return _recent_sample


class Span:
    """One timed operation; ``live`` spans additionally build the tree."""

    __slots__ = (
        "name", "attrs", "live", "register", "parent", "children",
        "start", "end", "_token", "_trace_id",
    )

    def __init__(
        self, name: str, live: bool, attrs: dict, register: bool = True,
    ) -> None:
        self.name = name
        self.attrs = attrs
        self.live = live
        self.register = register
        self.parent: Span | None = None
        self.children: list[Span] = []
        self.start = 0.0
        self.end = 0.0
        self._token = None
        self._trace_id: str | None = None

    def __enter__(self) -> "Span":
        if self.live:
            if self.register:
                # One contextvar op, not two: the set() token remembers
                # the displaced value, which is exactly the parent span
                # (unless an explicit parent was already assigned).
                token = _cv_set(self)
                self._token = token
                if self.parent is None:
                    parent = token.old_value
                    if parent is not _MISSING:
                        self.parent = parent
            elif self.parent is None:
                # Leaf spans pay a contextvar *read* (~3x cheaper than
                # set+reset, and no Token churn) and never publish
                # themselves — right for hot paths whose children, if
                # any, are handed the parent explicitly.
                self.parent = _current_span.get()
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.end = perf_counter()
        if not self.live:
            return
        token = self._token
        if token is not None:
            _cv_reset(token)
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        parent = self.parent
        if parent is not None:
            parent.children.append(self)
        elif self.end - self.start >= _slow_threshold_s:
            _slow_append(self)
            _recent_append(self)
        elif next(_sample_tick) % _recent_sample == 0:
            _recent_append(self)

    # ------------------------------------------------------------------
    @property
    def trace_id(self) -> str | None:
        """Process-unique id of this span's trace (``None`` when dead).

        Allocated lazily on first read (memoised per root), so warm-path
        spans that nobody inspects never pay for the id at all.
        """
        if self._trace_id is None and self.live:
            parent = self.parent
            if parent is not None:
                self._trace_id = parent.trace_id
            else:
                self._trace_id = f"{_trace_prefix}-{next(_trace_ids):x}"
        return self._trace_id

    @property
    def duration_ms(self) -> float:
        end = self.end if self.end else perf_counter()
        return (end - self.start) * 1000.0

    def annotate(self, **attrs) -> "Span":
        """Attach attributes discovered mid-span (backend chosen, …)."""
        self.attrs.update(attrs)
        return self

    def adopt_trace(self, trace_id: str | None) -> "Span":
        """Join a caller-supplied trace instead of allocating a fresh id.

        Cross-process propagation: the server's root request span adopts
        the id the client sent in ``X-Repro-Trace``, so server-side spans
        land in the trace rings under the *caller's* trace id and one id
        follows a request across the wire.  Only live root spans adopt —
        a nested span already shares its parent's trace."""
        if trace_id and self.live and self.parent is None:
            self._trace_id = str(trace_id)
        return self

    def __repr__(self) -> str:
        return (
            f"Span({self.name!r}, {self.duration_ms:.3f} ms, "
            f"children={len(self.children)})"
        )


# ----------------------------------------------------------------------
# profiler hook (see repro.obs.profile)
#
# The sampling profiler runs on its own thread and cannot read another
# thread's contextvars, so while a profiler is attached every live span
# additionally publishes itself in this thread-keyed table on enter and
# restores its parent on exit.  The bookkeeping lives in *replacement*
# ``__enter__``/``__exit__`` methods swapped onto :class:`Span` by
# :func:`_set_profile_hook` — the default span hot path carries no
# profiler code at all, so the profiler-disabled overhead is exactly
# zero (``benchmarks/bench_obs.py`` gates that enabling and disabling
# the hook restores the original method objects and timing).
# ----------------------------------------------------------------------
_profiling = False
_profile_threads: dict[int, Span] = {}

_plain_enter = Span.__enter__
_plain_exit = Span.__exit__


def _profiled_enter(self: Span) -> Span:
    _plain_enter(self)
    if self.live:
        _profile_threads[get_ident()] = self
    return self


def _profiled_exit(self: Span, exc_type, exc, tb) -> None:
    _plain_exit(self, exc_type, exc, tb)
    if self.live:
        parent = self.parent
        if parent is None:
            _profile_threads.pop(get_ident(), None)
        else:
            _profile_threads[get_ident()] = parent


def _set_profile_hook(enabled: bool) -> None:
    global _profiling
    with _config_lock:
        _profiling = bool(enabled)
        if enabled:
            Span.__enter__ = _profiled_enter  # type: ignore[method-assign]
            Span.__exit__ = _profiled_exit  # type: ignore[method-assign]
        else:
            Span.__enter__ = _plain_enter  # type: ignore[method-assign]
            Span.__exit__ = _plain_exit  # type: ignore[method-assign]
            _profile_threads.clear()


def span(name: str, **attrs) -> Span:
    """A context manager timing one operation as a span.

    With tracing enabled the span joins the current context's span tree
    (becoming a root span — with a fresh ``trace_id`` — when no span is
    current); disabled, it only records start/stop times.
    """
    return Span(name, _enabled, attrs)


def leaf_span(name: str, **attrs) -> Span:
    """A span that never publishes itself in the ambient context.

    It still nests under the current span and still lands in the ring
    buffers when it is a root, but spans opened inside its ``with`` block
    will NOT see it as their parent — callees must be handed the span
    explicitly (see :func:`child_span`).  Use it on hot paths: skipping
    contextvar registration roughly halves the per-span cost, which is
    what keeps warm cache-hit task dispatch inside the bench_obs budget.
    """
    return Span(name, _enabled, attrs, register=False)


def child_span(parent: Span | None, name: str, **attrs) -> Span:
    """A span with an explicitly assigned parent.

    The escape hatch pairing :func:`leaf_span`: when the caller holds a
    non-registered span, it passes it down so cold-path children still
    nest correctly.  A dead or ``None`` parent falls back to ambient
    discovery, so callees need no tracing-mode conditionals.
    """
    created = Span(name, _enabled, attrs)
    if parent is not None and parent.live:
        created.parent = parent
    return created


def current_span() -> Span | None:
    """The innermost live span in this context, if any."""
    return _current_span.get()


def current_trace_id() -> str | None:
    """The trace id of the current context's span tree, if any."""
    active = _current_span.get()
    return active.trace_id if active is not None else None


def recent_traces(limit: int | None = None) -> list[Span]:
    """The most recent completed root spans, newest last."""
    traces = list(_recent)
    return traces if limit is None else traces[-limit:]


def slow_traces(limit: int | None = None) -> list[Span]:
    """Recent root spans over the slow threshold, newest last."""
    traces = list(_slow)
    return traces if limit is None else traces[-limit:]


def clear_traces() -> None:
    _recent.clear()
    _slow.clear()


def bind_current_context(fn):
    """Wrap ``fn`` to run inside a copy of the *calling* context.

    ``ThreadPoolExecutor`` (and ``loop.run_in_executor``) do not
    propagate contextvars; submitting ``bind_current_context(fn)``
    instead of ``fn`` keeps the caller's span current inside the worker,
    so spans opened there nest under the caller's trace.
    """
    ctx = copy_context()

    def bound(*args, **kwargs):
        return ctx.run(fn, *args, **kwargs)

    return bound


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------
def span_to_dict(node: "Span | dict") -> dict:
    """A span tree as a JSON-able dict (the wire/trace-endpoint shape)."""
    if isinstance(node, dict):
        return node
    payload: dict = {
        "name": node.name,
        "duration_ms": round(node.duration_ms, 3),
    }
    if node.trace_id is not None:
        payload["trace_id"] = node.trace_id
    if node.attrs:
        payload["attrs"] = {
            key: value
            if isinstance(value, (str, int, float, bool, type(None)))
            else repr(value)
            for key, value in node.attrs.items()
        }
    if node.children:
        payload["children"] = [span_to_dict(child) for child in node.children]
    return payload


def render_span(node: "Span | dict", indent: str = "") -> str:
    """A span tree as indented text (the ``.explain()`` / CLI rendering)."""
    data = span_to_dict(node)
    attrs = data.get("attrs", {})
    attr_text = "".join(
        f"  {key}={attrs[key]}" for key in sorted(attrs)
    )
    trace_id = data.get("trace_id")
    head = (
        f"{indent}{data['name']}  {data['duration_ms']:.3f} ms{attr_text}"
        + (f"  [trace {trace_id}]" if trace_id and not indent else "")
    )
    lines = [head]
    for child in data.get("children", ()):
        lines.append(render_span(child, indent + "  "))
    return "\n".join(lines)
