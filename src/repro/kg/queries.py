"""Conjunctive queries over knowledge graphs and their width measures.

A KG conjunctive query is a pair ``(P, X)``: a pattern knowledge graph and
a set of free variables.  Answers are assignments of the free variables
extendable to KG homomorphisms (the exact analogue of Definition 8).

Widths are measured on the Gaifman graph of the pattern, with the
extension-graph construction lifted verbatim: components of the quantified
part that attach to several free variables induce cliques.  Remark (C) of
the paper states the WL-dimension analysis carries over; the tests validate
the upper-bound side on labelled CFI-style instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import QueryError
from repro.kg.kgraph import (
    KnowledgeGraph,
    Vertex,
    enumerate_kg_homomorphisms,
)
from repro.treewidth.exact import treewidth


@dataclass(frozen=True)
class KgQuery:
    """A conjunctive query ``(P, X)`` over knowledge graphs."""

    pattern: KnowledgeGraph
    free_variables: frozenset

    def __init__(
        self,
        pattern: KnowledgeGraph,
        free_variables: Iterable[Vertex],
    ) -> None:
        free = frozenset(free_variables)
        missing = free - set(pattern.vertices())
        if missing:
            raise QueryError(f"free variables not in pattern: {missing!r}")
        object.__setattr__(self, "pattern", pattern)
        object.__setattr__(self, "free_variables", free)

    @property
    def quantified_variables(self) -> frozenset:
        return frozenset(set(self.pattern.vertices()) - self.free_variables)

    def is_connected(self) -> bool:
        return self.pattern.is_connected()


def enumerate_kg_answers(
    query: KgQuery,
    target: KnowledgeGraph,
) -> Iterator[dict]:
    """Assignments of the free variables extendable to KG homomorphisms."""
    free = sorted(query.free_variables, key=repr)
    if not free:
        for _ in enumerate_kg_homomorphisms(query.pattern, target):
            yield {}
            return
        return

    from itertools import product

    for images in product(target.vertices(), repeat=len(free)):
        assignment = dict(zip(free, images))
        for _ in enumerate_kg_homomorphisms(query.pattern, target, fixed=assignment):
            yield assignment
            break


def count_kg_answers_brute(query: KgQuery, target: KnowledgeGraph) -> int:
    """Reference implementation: enumerate answers by backtracking."""
    return sum(1 for _ in enumerate_kg_answers(query, target))


def count_kg_answers(
    query: KgQuery,
    target: KnowledgeGraph,
    method: str = "engine",
    engine=None,
) -> int:
    """``|Ans((P, X), target)|`` for a KG conjunctive query.

    ``method='engine'`` (the default) routes every extendability probe
    through the engine's colour-restricted homomorphism path
    (:mod:`repro.kg.engine_bridge`), so repeated queries against the same
    target are served from the plan/count caches; ``method='brute'`` is
    the enumeration reference the tests compare against.
    """
    if method == "brute":
        return count_kg_answers_brute(query, target)
    if method != "engine":
        raise QueryError(f"unknown KG counting method {method!r}")
    if engine is not None:
        from repro.kg.engine_bridge import count_kg_answers_engine

        return count_kg_answers_engine(query, target, engine=engine)
    # Default engine: a thin shim over the task API, so this entry point,
    # `Session.run(KgAnswerCountTask(...))`, and the service share one
    # execution route.
    from repro.api.session import default_session

    return default_session().run_kg_answer_count(query, target)


def kg_extension_graph(query: KgQuery):
    """Γ(P, X) on the Gaifman graph of the pattern."""
    gaifman = query.pattern.gaifman_graph()
    quantified = query.quantified_variables
    gamma = gaifman.copy()
    if quantified:
        for component in gaifman.induced_subgraph(quantified).connected_components():
            attachment = sorted(
                set(gaifman.neighbourhood_of_set(component)) & query.free_variables,
                key=repr,
            )
            for i, u in enumerate(attachment):
                for v in attachment[i + 1:]:
                    if not gamma.has_edge(u, v):
                        gamma.add_edge(u, v)
    return gamma


def kg_extension_width(query: KgQuery) -> int:
    """``ew(P, X) = tw(Γ(P, X))`` — the upper bound on the WL-dimension of
    the KG query (remark (C))."""
    return treewidth(kg_extension_graph(query))


def kg_query_from_triples(
    triples: Iterable[tuple],
    free_variables: Iterable[Vertex],
    vertex_labels: dict | None = None,
) -> KgQuery:
    """Build a query pattern from ``(source, label, target)`` atoms."""
    pattern = KnowledgeGraph(vertices=vertex_labels or {}, triples=triples)
    for free in free_variables:
        pattern.add_vertex(free)
    return KgQuery(pattern, free_variables)
