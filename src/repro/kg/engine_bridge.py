"""Knowledge-graph counting through the engine's colour-restricted path.

``enumerate_kg_homomorphisms`` is a plain backtracker: no plan reuse, no
count caching, every request pays full price.  This module reduces KG
homomorphism counting to *ordinary* graph homomorphism counting with
``allowed`` candidate restrictions — the exact machinery
:mod:`repro.homs.colored` and the engine's plans already optimise and
cache — so KG requests ride the same plan/count caches (including the
service's persistent tier) as plain-graph queries.

The reduction encodes each directed labelled triple ``(s, l, t)`` as an
undirected gadget path ``s — a — b — t`` with fresh midpoints ``a``/``b``
per triple, in both the pattern and the target; ``allowed`` then confines

* encoded KG vertices to label-compatible encoded KG vertices,
* each ``a``-midpoint to target ``a``-midpoints of triples with the same
  edge label (likewise ``b``).

For a pattern triple gadget mapped under such a restricted homomorphism,
the ``a — b`` edge forces both midpoints onto the *same* target triple
(the only ``a``/``b`` pair adjacent in the target encoding), and the outer
edges then force ``s`` onto that triple's source and ``t`` onto its target
— direction and edge label are both enforced.  Conversely every KG
homomorphism extends uniquely to the midpoints, so the restricted counts
agree exactly.  Treewidth is preserved up to the subdivision (never
increased beyond ``max(tw, 1)``), so plan quality carries over.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Mapping

from repro.graphs.graph import Graph
from repro.kg.kgraph import KnowledgeGraph, Vertex

_EMPTY: frozenset = frozenset()


@dataclass(frozen=True)
class KgEncoding:
    """A knowledge graph compiled into gadget-encoded plain-graph form."""

    kg: KnowledgeGraph
    graph: Graph
    # label -> encoded KG vertices carrying it; None keys are vertices
    # without a label (matched only by wildcard pattern vertices).
    vertex_pools: Mapping
    all_vertices: frozenset
    # edge label -> encoded "a"/"b" midpoints of triples carrying it.
    head_pools: Mapping
    tail_pools: Mapping

    def vertex_pool(self, label) -> frozenset:
        """Images allowed for a pattern vertex labelled ``label``."""
        if label is None:
            return self.all_vertices
        return self.vertex_pools.get(label, _EMPTY)


def encode_kg(kg: KnowledgeGraph) -> KgEncoding:
    """Compile ``kg`` into its gadget encoding (do this once per dataset)."""
    graph = Graph()
    vertex_pools: dict = {}
    head_pools: dict = {}
    tail_pools: dict = {}
    for vertex in kg.vertices():
        encoded = ("v", vertex)
        graph.add_vertex(encoded)
        label = kg.vertex_label(vertex)
        vertex_pools.setdefault(label, set()).add(encoded)
    for source, label, target in kg.triples():
        head = ("a", source, label, target)
        tail = ("b", source, label, target)
        graph.add_edge(("v", source), head)
        graph.add_edge(head, tail)
        graph.add_edge(tail, ("v", target))
        head_pools.setdefault(label, set()).add(head)
        tail_pools.setdefault(label, set()).add(tail)
    all_vertices = frozenset(
        encoded for pool in vertex_pools.values() for encoded in pool
    )
    return KgEncoding(
        kg=kg,
        graph=graph,
        vertex_pools={k: frozenset(v) for k, v in vertex_pools.items()},
        all_vertices=all_vertices,
        head_pools={k: frozenset(v) for k, v in head_pools.items()},
        tail_pools={k: frozenset(v) for k, v in tail_pools.items()},
    )


def kg_allowed(
    pattern: KgEncoding,
    target: KgEncoding,
    fixed: Mapping[Vertex, Vertex] | None = None,
) -> dict:
    """The ``allowed`` restriction realising KG semantics on the encodings.

    ``fixed`` pins pattern KG vertices to target KG vertices (used for
    answer extendability probes); a pinned image that violates the vertex
    label yields an empty pool, hence count zero — matching the brute
    semantics.
    """
    allowed: dict = {}
    kg = pattern.kg
    for vertex in kg.vertices():
        pool = target.vertex_pool(kg.vertex_label(vertex))
        if fixed is not None and vertex in fixed:
            image = ("v", fixed[vertex])
            pool = frozenset({image}) if image in pool else _EMPTY
        allowed[("v", vertex)] = pool
    for source, label, edge_target in kg.triples():
        allowed[("a", source, label, edge_target)] = target.head_pools.get(
            label, _EMPTY,
        )
        allowed[("b", source, label, edge_target)] = target.tail_pools.get(
            label, _EMPTY,
        )
    return allowed


def count_kg_homomorphisms_engine(
    pattern: KnowledgeGraph | KgEncoding,
    target: KnowledgeGraph | KgEncoding,
    fixed: Mapping[Vertex, Vertex] | None = None,
    engine=None,
    target_id: tuple | None = None,
) -> int:
    """``|Hom(pattern, target)|`` for knowledge graphs, via the engine.

    Accepts raw graphs or precomputed :class:`KgEncoding` objects (the
    dataset registry passes the latter, so per-request encoding cost is
    zero for registered datasets).  ``target_id`` short-circuits the
    gadget graph's cache fingerprint with a precomputed key — the dynamic
    layer passes its per-version digest so counts stay cached per target
    version.
    """
    if engine is None:
        from repro.engine import default_engine

        engine = default_engine()
    if not isinstance(pattern, KgEncoding):
        pattern = encode_kg(pattern)
    if not isinstance(target, KgEncoding):
        target = encode_kg(target)
    allowed = kg_allowed(pattern, target, fixed=fixed)
    return engine.count(
        pattern.graph, target.graph, allowed=allowed, target_id=target_id,
    )


def count_kg_answers_engine(query, target, engine=None, target_id=None) -> int:
    """``|Ans((P, X), target)|`` with every extendability probe served by
    the engine's cached colour-restricted path.

    The encoded pattern is compiled once; each candidate assignment of the
    free variables becomes one restricted count (cached individually, so
    repeats of the same request are pure cache hits).
    """
    pattern_encoding = encode_kg(query.pattern)
    target_encoding = target if isinstance(target, KgEncoding) else encode_kg(target)
    free = sorted(query.free_variables, key=repr)
    if not free:
        count = count_kg_homomorphisms_engine(
            pattern_encoding, target_encoding, engine=engine,
            target_id=target_id,
        )
        return 1 if count > 0 else 0

    # Enumerate only label-compatible images for each free variable.
    kg = query.pattern
    target_kg = target_encoding.kg
    domains = []
    for variable in free:
        wanted = kg.vertex_label(variable)
        domains.append([
            w for w in target_kg.vertices()
            if wanted is None or target_kg.vertex_label(w) == wanted
        ])

    total = 0
    for images in product(*domains):
        assignment = dict(zip(free, images))
        extensions = count_kg_homomorphisms_engine(
            pattern_encoding, target_encoding, fixed=assignment, engine=engine,
            target_id=target_id,
        )
        if extensions > 0:
            total += 1
    return total
