"""Knowledge graphs (Section 1.3, remark (C)).

The paper notes that its analysis extends to *knowledge graphs*: directed
graphs with vertex labels and edge labels, parallel edges with distinct
labels allowed, self-loops forbidden.  This package implements that
extension: the data structure, homomorphisms, colour refinement, and
conjunctive queries with their width measures.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from repro.errors import GraphError

Vertex = Hashable
Label = Hashable
Triple = tuple  # (source, label, target)


class KnowledgeGraph:
    """A directed, vertex- and edge-labelled graph without self-loops.

    Edges are triples ``(source, label, target)``; multiple labels between
    the same ordered pair are allowed, duplicate triples are not stored
    twice.
    """

    __slots__ = ("_vertex_labels", "_out", "_in")

    def __init__(
        self,
        vertices: Mapping[Vertex, Label] | Iterable[Vertex] = (),
        triples: Iterable[Triple] = (),
    ) -> None:
        self._vertex_labels: dict[Vertex, Label] = {}
        self._out: dict[Vertex, set[tuple]] = {}
        self._in: dict[Vertex, set[tuple]] = {}
        if isinstance(vertices, Mapping):
            for vertex, label in vertices.items():
                self.add_vertex(vertex, label)
        else:
            for vertex in vertices:
                self.add_vertex(vertex)
        for source, label, target in triples:
            self.add_edge(source, label, target)

    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex, label: Label = None) -> None:
        if vertex in self._vertex_labels:
            if label is not None and self._vertex_labels[vertex] != label:
                raise GraphError(
                    f"vertex {vertex!r} already labelled "
                    f"{self._vertex_labels[vertex]!r}",
                )
            return
        self._vertex_labels[vertex] = label
        self._out[vertex] = set()
        self._in[vertex] = set()

    def add_edge(self, source: Vertex, label: Label, target: Vertex) -> None:
        if source == target:
            raise GraphError("knowledge graphs forbid self-loops")
        self.add_vertex(source)
        self.add_vertex(target)
        self._out[source].add((label, target))
        self._in[target].add((label, source))

    # ------------------------------------------------------------------
    def vertices(self) -> list[Vertex]:
        return list(self._vertex_labels)

    def vertex_label(self, vertex: Vertex) -> Label:
        return self._vertex_labels[vertex]

    def triples(self) -> list[Triple]:
        return [
            (source, label, target)
            for source, edges in self._out.items()
            for label, target in edges
        ]

    def has_edge(self, source: Vertex, label: Label, target: Vertex) -> bool:
        return source in self._out and (label, target) in self._out[source]

    def out_edges(self, vertex: Vertex) -> frozenset:
        """``{(label, target)}`` leaving ``vertex``."""
        return frozenset(self._out[vertex])

    def in_edges(self, vertex: Vertex) -> frozenset:
        """``{(label, source)}`` entering ``vertex``."""
        return frozenset(self._in[vertex])

    def num_vertices(self) -> int:
        return len(self._vertex_labels)

    def num_triples(self) -> int:
        return sum(len(edges) for edges in self._out.values())

    def neighbours_undirected(self, vertex: Vertex) -> frozenset:
        """Gaifman neighbourhood: adjacent in either direction, any label."""
        out_targets = {target for _, target in self._out[vertex]}
        in_sources = {source for _, source in self._in[vertex]}
        return frozenset(out_targets | in_sources)

    def gaifman_graph(self):
        """The underlying simple undirected graph — widths (treewidth,
        extension width) of KG queries are measured on it."""
        from repro.graphs.graph import Graph

        graph = Graph(vertices=self.vertices())
        for source, _, target in self.triples():
            graph.add_edge(source, target)
        return graph

    def is_connected(self) -> bool:
        return self.gaifman_graph().is_connected()

    def __repr__(self) -> str:
        return (
            f"KnowledgeGraph(n={self.num_vertices()}, "
            f"triples={self.num_triples()})"
        )


def enumerate_kg_homomorphisms(
    pattern: KnowledgeGraph,
    target: KnowledgeGraph,
    fixed: Mapping[Vertex, Vertex] | None = None,
) -> Iterator[dict]:
    """All homomorphisms of knowledge graphs: label-preserving on vertices
    (``None`` pattern labels are wildcards) and triple-preserving."""
    fixed = dict(fixed or {})
    pattern_vertices = [v for v in pattern.vertices() if v not in fixed]
    assignment: dict = dict(fixed)

    def compatible(vertex: Vertex, image: Vertex) -> bool:
        wanted = pattern.vertex_label(vertex)
        if wanted is not None and target.vertex_label(image) != wanted:
            return False
        for label, out_target in pattern.out_edges(vertex):
            if out_target in assignment and not target.has_edge(
                image, label, assignment[out_target],
            ):
                return False
        for label, in_source in pattern.in_edges(vertex):
            if in_source in assignment and not target.has_edge(
                assignment[in_source], label, image,
            ):
                return False
        return True

    for vertex, image in fixed.items():
        del assignment[vertex]
        if not compatible(vertex, image):
            return
        assignment[vertex] = image

    def extend(index: int) -> Iterator[dict]:
        if index == len(pattern_vertices):
            yield dict(assignment)
            return
        vertex = pattern_vertices[index]
        for image in target.vertices():
            if compatible(vertex, image):
                assignment[vertex] = image
                yield from extend(index + 1)
                del assignment[vertex]

    yield from extend(0)


def count_kg_homomorphisms(
    pattern: KnowledgeGraph,
    target: KnowledgeGraph,
    fixed: Mapping[Vertex, Vertex] | None = None,
) -> int:
    return sum(1 for _ in enumerate_kg_homomorphisms(pattern, target, fixed))


def kg_colour_refinement(graph: KnowledgeGraph) -> dict[Vertex, int]:
    """1-WL for knowledge graphs: initial colour = vertex label, messages
    carry (direction, edge label, neighbour colour)."""
    palette: dict = {}

    def intern(signature) -> int:
        if signature not in palette:
            palette[signature] = len(palette)
        return palette[signature]

    colours = {
        v: intern(("label", repr(graph.vertex_label(v)))) for v in graph.vertices()
    }
    for _ in range(max(graph.num_vertices(), 1)):
        num_classes = len(set(colours.values()))
        colours = {
            v: intern(
                (
                    colours[v],
                    tuple(sorted(
                        ("out", repr(label), colours[target])
                        for label, target in graph.out_edges(v)
                    )),
                    tuple(sorted(
                        ("in", repr(label), colours[source])
                        for label, source in graph.in_edges(v)
                    )),
                ),
            )
            for v in graph.vertices()
        }
        if len(set(colours.values())) == num_classes:
            break
    return colours


def kg_wl_1_equivalent(first: KnowledgeGraph, second: KnowledgeGraph) -> bool:
    """Lockstep KG colour refinement with a shared palette."""
    if first.num_vertices() != second.num_vertices():
        return False
    palette: dict = {}

    def intern(signature) -> int:
        if signature not in palette:
            palette[signature] = len(palette)
        return palette[signature]

    def initial(graph: KnowledgeGraph) -> dict:
        return {
            v: intern(("label", repr(graph.vertex_label(v))))
            for v in graph.vertices()
        }

    def refine(graph: KnowledgeGraph, colours: dict) -> dict:
        return {
            v: intern(
                (
                    colours[v],
                    tuple(sorted(
                        ("out", repr(label), colours[target])
                        for label, target in graph.out_edges(v)
                    )),
                    tuple(sorted(
                        ("in", repr(label), colours[source])
                        for label, source in graph.in_edges(v)
                    )),
                ),
            )
            for v in graph.vertices()
        }

    def histogram(colours: dict) -> dict:
        result: dict[int, int] = {}
        for value in colours.values():
            result[value] = result.get(value, 0) + 1
        return result

    colours_a = initial(first)
    colours_b = initial(second)
    if histogram(colours_a) != histogram(colours_b):
        return False
    for _ in range(max(first.num_vertices(), 1)):
        num_classes = len(set(colours_a.values()) | set(colours_b.values()))
        colours_a = refine(first, colours_a)
        colours_b = refine(second, colours_b)
        if histogram(colours_a) != histogram(colours_b):
            return False
        if len(set(colours_a.values()) | set(colours_b.values())) == num_classes:
            break
    return True
