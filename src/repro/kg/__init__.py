"""Knowledge-graph extension (Section 1.3, remark (C))."""

from repro.kg.kgraph import (
    KnowledgeGraph,
    count_kg_homomorphisms,
    enumerate_kg_homomorphisms,
    kg_colour_refinement,
    kg_wl_1_equivalent,
)
from repro.kg.engine_bridge import (
    KgEncoding,
    count_kg_answers_engine,
    count_kg_homomorphisms_engine,
    encode_kg,
)
from repro.kg.queries import (
    KgQuery,
    count_kg_answers,
    count_kg_answers_brute,
    enumerate_kg_answers,
    kg_extension_graph,
    kg_extension_width,
    kg_query_from_triples,
)

__all__ = [
    "KgEncoding",
    "KgQuery",
    "KnowledgeGraph",
    "count_kg_answers",
    "count_kg_answers_brute",
    "count_kg_answers_engine",
    "count_kg_homomorphisms",
    "count_kg_homomorphisms_engine",
    "encode_kg",
    "enumerate_kg_answers",
    "enumerate_kg_homomorphisms",
    "kg_colour_refinement",
    "kg_extension_graph",
    "kg_extension_width",
    "kg_query_from_triples",
    "kg_wl_1_equivalent",
]
