"""Colour-block cloning ``G(G, F, c, v⃗, z⃗)`` (Definition 33).

Given an ``F``-colouring ``c`` of ``G``, a tuple ``v⃗`` of distinct vertices
of ``F`` and a tuple ``z⃗`` of positive integers, the cloned graph replaces
each colour class ``B_{v_i} = c^{-1}(v_i)`` by ``z_i`` copies; adjacency is
inherited through the projection to the original vertices.

To keep primal and cloned vertices unambiguous regardless of the original
label types (CFI vertices are already tuples), labels are wrapped:

* primal vertex ``u``  →  ``('primal', u)``
* clone ``(u, j)``      →  ``('clone', u, j)`` with ``j ∈ 1..z_i``

:func:`clone_colouring` is ``C(G, F, c, v⃗, z⃗)``; :func:`clone_projection`
is the homomorphism ``ρ`` back to ``G`` used in Lemmas 34/38.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.errors import GraphError
from repro.graphs.graph import Graph, Vertex


def clone_colour_blocks(
    graph: Graph,
    colouring: Mapping[Vertex, Vertex],
    block_colours: Sequence[Vertex],
    multiplicities: Sequence[int],
) -> Graph:
    """Build ``G(graph, F, colouring, v⃗, z⃗)`` (Definition 33)."""
    if len(block_colours) != len(multiplicities):
        raise GraphError("v⃗ and z⃗ must have the same length")
    if len(set(block_colours)) != len(block_colours):
        raise GraphError("block colours must be pairwise distinct")
    if any(z < 1 for z in multiplicities):
        raise GraphError("multiplicities must be positive")

    multiplicity_of = dict(zip(block_colours, multiplicities))

    def expand(vertex: Vertex) -> list:
        colour = colouring[vertex]
        if colour in multiplicity_of:
            return [
                ("clone", vertex, j)
                for j in range(1, multiplicity_of[colour] + 1)
            ]
        return [("primal", vertex)]

    result = Graph()
    expansion = {v: expand(v) for v in graph.vertices()}
    for copies in expansion.values():
        for label in copies:
            result.add_vertex(label)
    for u, v in graph.edges():
        for label_u in expansion[u]:
            for label_v in expansion[v]:
                result.add_edge(label_u, label_v)
    return result


def clone_projection(cloned: Graph) -> dict[Vertex, Vertex]:
    """The homomorphism ``ρ`` mapping each (wrapped) vertex to its original."""
    projection: dict[Vertex, Vertex] = {}
    for label in cloned.vertices():
        if label[0] == "primal":
            projection[label] = label[1]
        elif label[0] == "clone":
            projection[label] = label[1]
        else:  # pragma: no cover - labels always come from clone_colour_blocks
            raise GraphError(f"unexpected cloned label {label!r}")
    return projection


def clone_colouring(
    cloned: Graph,
    colouring: Mapping[Vertex, Vertex],
) -> dict[Vertex, Vertex]:
    """``C(G, F, c, v⃗, z⃗)``: colour of a clone = colour of its primal."""
    projection = clone_projection(cloned)
    return {label: colouring[projection[label]] for label in cloned.vertices()}
