"""CFI graphs, twisted pairs, and colour-block cloning."""

from repro.cfi.cloning import clone_colour_blocks, clone_colouring, clone_projection
from repro.cfi.construction import (
    cfi_graph,
    cfi_projection,
    cfi_size,
    verify_cfi_graph,
)
from repro.cfi.pairs import CfiPair, cfi_pair

__all__ = [
    "CfiPair",
    "cfi_graph",
    "cfi_pair",
    "cfi_projection",
    "cfi_size",
    "clone_colour_blocks",
    "clone_colouring",
    "clone_projection",
    "verify_cfi_graph",
]
