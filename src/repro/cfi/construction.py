"""The Cai-Fürer-Immerman construction ``χ(G, W)`` (Definition 25).

For a graph ``G`` and ``W ⊆ V(G)``:

* vertices: ``(w, S)`` with ``w ∈ V(G)``, ``S ⊆ N_G(w)`` and
  ``|S| ≡ δ_{w,W} (mod 2)`` (odd sets exactly at twisted vertices);
* edges: ``{(w, S), (w', S')}`` iff ``{w, w'} ∈ E(G)`` and
  ``w' ∈ S ⇔ w ∈ S'``.

Key properties reproduced in tests/experiments:

* Lemma 26 — for connected ``G``, ``χ(G, W) ≅ χ(G, W')`` iff
  ``|W| ≡ |W'| (mod 2)``;
* Lemma 27 — if ``tw(G) = t`` then ``χ(G, ∅) ≅_k χ(G, {w})`` for all
  ``k < t``;
* Observation 29 — the projection ``π₁`` is a ``G``-colouring of
  ``χ(G, W)``.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.errors import GraphError
from repro.graphs.graph import Graph, Vertex

CfiVertex = tuple  # (base_vertex, frozenset_of_neighbours)


def _even_subsets(items: list) -> Iterable[frozenset]:
    for size in range(0, len(items) + 1, 2):
        for subset in combinations(items, size):
            yield frozenset(subset)


def _odd_subsets(items: list) -> Iterable[frozenset]:
    for size in range(1, len(items) + 1, 2):
        for subset in combinations(items, size):
            yield frozenset(subset)


def cfi_graph(base: Graph, twist: Iterable[Vertex] = ()) -> Graph:
    """Construct ``χ(base, twist)`` per Definition 25."""
    twist_set = set(twist)
    missing = twist_set - set(base.vertices())
    if missing:
        raise GraphError(f"twist vertices not in base graph: {missing!r}")

    result = Graph()
    for w in base.vertices():
        neighbours = sorted(base.neighbours(w), key=repr)
        subsets = _odd_subsets(neighbours) if w in twist_set else _even_subsets(neighbours)
        for subset in subsets:
            result.add_vertex((w, subset))

    # Indexed edge construction (quadratic over compatible colour classes).
    by_base: dict[Vertex, list[CfiVertex]] = {}
    for vertex in result.vertices():
        by_base.setdefault(vertex[0], []).append(vertex)
    for w, w_prime in base.edges():
        for (a, set_a) in by_base[w]:
            for (b, set_b) in by_base[w_prime]:
                if (b in set_a) == (a in set_b):
                    result.add_edge((a, set_a), (b, set_b))
    return result


def cfi_projection(cfi: Graph) -> dict[CfiVertex, Vertex]:
    """The ``π₁`` colouring ``χ(G, W) → G`` (Observation 29)."""
    return {vertex: vertex[0] for vertex in cfi.vertices()}


def cfi_size(base: Graph, twist: Iterable[Vertex] = ()) -> int:
    """``|V(χ(base, twist))| = Σ_w 2^{max(deg(w)-1, 0)}`` (0-degree vertices
    contribute one even-set vertex; twisted isolated vertices contribute
    none)."""
    twist_set = set(twist)
    total = 0
    for w in base.vertices():
        degree = base.degree(w)
        if degree == 0:
            total += 0 if w in twist_set else 1
        else:
            total += 2 ** (degree - 1)
    return total


def verify_cfi_graph(base: Graph, twist: Iterable[Vertex], cfi: Graph) -> bool:
    """Defensive check that ``cfi`` satisfies Definition 25 exactly."""
    twist_set = set(twist)
    for vertex in cfi.vertices():
        if not isinstance(vertex, tuple) or len(vertex) != 2:
            return False
        w, s = vertex
        if not base.has_vertex(w):
            return False
        if not s <= base.neighbours(w):
            return False
        parity = 1 if w in twist_set else 0
        if len(s) % 2 != parity:
            return False
    if cfi.num_vertices() != cfi_size(base, twist_set):
        return False
    for (w, s), (w2, s2) in cfi.edges():
        if not base.has_edge(w, w2):
            return False
        if (w2 in s) != (w in s2):
            return False
    # Every Definition-25 edge must be present.
    by_base: dict[Vertex, list[CfiVertex]] = {}
    for vertex in cfi.vertices():
        by_base.setdefault(vertex[0], []).append(vertex)
    for w, w2 in base.edges():
        for (a, sa) in by_base.get(w, ()):
            for (b, sb) in by_base.get(w2, ()):
                expected = (b in sa) == (a in sb)
                if expected != cfi.has_edge((a, sa), (b, sb)):
                    return False
    return True
