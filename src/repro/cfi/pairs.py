"""Twisted CFI pairs: the lower-bound gadget of Section 4.

For a connected base graph ``F`` of treewidth ``t``, the pair
``(χ(F, ∅), χ(F, {w}))`` is

* non-isomorphic (Lemma 26: twist parities 0 vs 1 differ), yet
* (t−1)-WL-equivalent (Lemma 27),

and the twist is detected at level ``t`` — e.g. by the homomorphism count
from ``F`` itself (``tw(F) = t``), which Theorem 32 bounds one-sidedly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import GraphError
from repro.graphs.graph import Graph, Vertex
from repro.cfi.construction import cfi_graph, cfi_projection


@dataclass(frozen=True)
class CfiPair:
    """A twisted pair with shared base graph and its π₁ colourings."""

    base: Graph
    untwisted: Graph
    twisted: Graph
    twist_vertex: Vertex

    @property
    def untwisted_colouring(self) -> dict:
        return cfi_projection(self.untwisted)

    @property
    def twisted_colouring(self) -> dict:
        return cfi_projection(self.twisted)


def cfi_pair(base: Graph, twist_vertex: Vertex | None = None) -> CfiPair:
    """Build ``(χ(base, ∅), χ(base, {twist_vertex}))``.

    ``base`` must be connected (Lemma 26's hypothesis).  The twist vertex
    defaults to the first vertex in insertion order.
    """
    if not base.is_connected() or base.num_vertices() == 0:
        raise GraphError("CFI pairs require a non-empty connected base graph")
    if twist_vertex is None:
        twist_vertex = base.vertices()[0]
    elif not base.has_vertex(twist_vertex):
        raise GraphError(f"twist vertex {twist_vertex!r} not in base graph")
    return CfiPair(
        base=base,
        untwisted=cfi_graph(base, ()),
        twisted=cfi_graph(base, (twist_vertex,)),
        twist_vertex=twist_vertex,
    )
