"""Packed ``uint64`` bitset arrays over :class:`IndexedGraph` CSR data.

The pure-Python kernel keeps candidate pools as Python big-ints (one bit
per target vertex); this module is the vectorised counterpart: a graph's
neighbourhood bitsets become an ``(n, words)`` ``uint64`` matrix so a
whole *batch* of pool intersections is one ``&`` over rows, expansion of
every pool into its member indices is one ``unpackbits``/``nonzero``
pair, and popcounts come from ``bitwise_count``/byte tables instead of
``int.bit_count`` per pool.

Converters keep the two representations interchangeable: a Python-int
mask packs into a word row (:func:`pack_mask`) and back
(:func:`unpack_mask_int`), so ``allowed`` restrictions and the
backtracking search's partially-intersected pools cross the boundary
losslessly.  Consumers: :mod:`repro.kernel.dp_numpy` (DP candidate
pools) and :func:`repro.homs.brute_force.count_homomorphisms_brute`
(vectorised bottom-of-search expansion).
"""

from __future__ import annotations

from repro.kernel.backend import numpy_or_none

# Per-IndexedGraph cache of the packed matrix, keyed by id(graph) with a
# weak guard via the graph's own lifetime: IndexedGraph is immutable and
# hashless, so the matrix is attached on first use through this module
# (see packed_bitsets).
_WORD_BITS = 64


def word_count(n: int) -> int:
    """Words needed for an ``n``-bit pool (at least 1 so shapes stay 2-D)."""
    return max(1, (n + _WORD_BITS - 1) // _WORD_BITS)


def pack_bitsets(graph) -> "object":
    """The ``(n, words)`` ``uint64`` neighbourhood-bitset matrix of an
    :class:`~repro.graphs.indexed.IndexedGraph`, cached on the graph.

    Row ``v`` is the packed form of ``graph.bitsets()[v]``; built
    straight from the CSR arrays with one ``bitwise_or.at`` scatter, no
    Python big-ints involved.
    """
    cached = getattr(graph, "_packed_bitsets", None)
    if cached is not None:
        return cached
    numpy = numpy_or_none()
    if numpy is None:
        raise RuntimeError("packed bitsets need numpy")
    n = graph.n
    words = word_count(n)
    matrix = numpy.zeros((n, words), dtype=numpy.uint64)
    if len(graph.targets):
        targets = numpy.frombuffer(graph.targets, dtype=numpy.int64)
        offsets = numpy.frombuffer(graph.offsets, dtype=numpy.int64)
        degrees = offsets[1:] - offsets[:-1]
        sources = numpy.repeat(numpy.arange(n, dtype=numpy.int64), degrees)
        flat = matrix.reshape(-1)
        positions = sources * words + (targets >> 6)
        bits = numpy.uint64(1) << (targets.astype(numpy.uint64) & numpy.uint64(63))
        numpy.bitwise_or.at(flat, positions, bits)
    try:
        graph._packed_bitsets = matrix
    except AttributeError:  # __slots__ without the cache slot
        pass
    return matrix


def pack_mask(mask: int, n: int) -> "object":
    """A Python-int bitset as a ``(words,)`` ``uint64`` row."""
    numpy = numpy_or_none()
    words = word_count(n)
    return numpy.frombuffer(
        mask.to_bytes(words * 8, "little"), dtype=numpy.uint64,
    ).copy()


def unpack_mask_int(row) -> int:
    """The Python-int bitset of a ``(words,)`` ``uint64`` row."""
    return int.from_bytes(row.tobytes(), "little")


def expand_rows(pools, n: int):
    """Member indices of every pool row at once.

    ``pools`` is ``(rows, words)`` ``uint64``; returns ``(row_index,
    member)`` int64 arrays listing each set bit, ordered by row then by
    member — the vectorised form of the ``while pool: pool &= pool - 1``
    bit loop over every row.
    """
    numpy = numpy_or_none()
    bits = numpy.unpackbits(
        pools.view(numpy.uint8), axis=1, bitorder="little", count=n,
    )
    return numpy.nonzero(bits)


def expand_mask(mask: int, n: int):
    """Member indices of one Python-int pool as an int64 array."""
    numpy = numpy_or_none()
    row = pack_mask(mask, n).reshape(1, -1)
    return expand_rows(row, n)[1]


def popcount_rows(pools):
    """Per-row popcounts of a ``(rows, words)`` ``uint64`` matrix."""
    numpy = numpy_or_none()
    if hasattr(numpy, "bitwise_count"):
        return numpy.bitwise_count(pools).sum(axis=1, dtype=numpy.int64)
    bytes_view = pools.view(numpy.uint8)
    table = _byte_popcounts(numpy)
    return table[bytes_view].sum(axis=1, dtype=numpy.int64)


_byte_table = None


def _byte_popcounts(numpy):
    global _byte_table
    if _byte_table is None:
        _byte_table = numpy.array(
            [bin(i).count("1") for i in range(256)], dtype=numpy.int64,
        )
    return _byte_table


def leaf_pair_count(candidates, packed, base_mask_row) -> int:
    """``sum(popcount(base & bitset[c]) for c in candidates)`` in one shot.

    The bottom two levels of the backtracking counter: ``candidates``
    are the images of the second-to-last search vertex, ``base_mask_row``
    the already-intersected static pool of the last vertex.  Exact: the
    per-row popcount sum is at most ``n**2 < 2**63``.
    """
    rows = packed[candidates] & base_mask_row
    return int(popcount_rows(rows).sum())
