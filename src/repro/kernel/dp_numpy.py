"""Vectorised evaluation of the treewidth-DP instruction tape.

The pure-Python :class:`~repro.engine.plans.DPPlan` walks its tape with
dict tables ``{bag-assignment tuple: count}``; this module evaluates the
*same tape* with ndarray tables.  A table is a pair of parallel int64
arrays — ``codes`` (each bag assignment packed into one integer, base
``n`` mixed radix, kept unique) and ``counts`` — so the four
instructions become batched array steps:

* LEAF — the empty assignment: ``([0], [1])``;
* INTRODUCE — digit-extract the already-assigned neighbour images from
  every code at once, pick the *lowest-degree* pinned neighbour per row
  as the pivot, gather its CSR adjacency slice as the candidate images
  (one ``repeat``/``arange`` gather, proportional to output size — no
  dense ``n``-wide pools), filter the remaining pinned neighbours and
  any ``allowed`` mask with packed-bitset bit tests
  (:mod:`repro.kernel.bitset_numpy`), then splice the image digit into
  every code with one radix shift;
* FORGET — a radix contraction deletes the digit, then a
  sort + ``add.reduceat`` group-by merges collapsed assignments;
* JOIN — ``intersect1d`` on the two unique code arrays, counts multiply.

**Exact big-int safety.**  Counts are exact integers; int64 is a speed
representation, not a semantics change.  Before any step that could
exceed int64 — code packing (``n**(width+1)``), FORGET sums, JOIN
products — an a-priori bound is checked with Python big-ints and
:class:`~repro.kernel.backend.KernelUnsupported` is raised, sending the
execution back to the pure-Python tape (counted in
``repro_kernel_fallback_total{layer="dp",reason="overflow"}``).  The
bounds are conservative: a fallback may be unnecessary, but a silent
wraparound is impossible.
"""

from __future__ import annotations

from repro.kernel.backend import KernelUnsupported, numpy_or_none
from repro.kernel.bitset_numpy import expand_mask, pack_bitsets, pack_mask

# Opcodes mirror repro.engine.plans (kept numerically identical; this
# module stays importable without triggering the engine package).
_LEAF = 0
_INTRODUCE = 1
_FORGET = 2
_JOIN = 3

# Packed codes and counts both live in int64 with one bit of headroom.
_INT64_LIMIT = 1 << 62


def packable(n: int, max_bag: int) -> bool:
    """Can every bag assignment over an ``n``-vertex target pack into
    int64?  Needs ``n**max_bag < 2**62`` (checked in exact Python ints)."""
    if n <= 1:
        return True
    return n ** max_bag < _INT64_LIMIT


class _Tables:
    """Execution state shared by the instruction handlers."""

    __slots__ = (
        "numpy", "n", "radix", "offsets", "targets", "degrees",
        "packed", "graph", "empty",
    )

    def __init__(self, numpy, indexed_target, max_bag: int) -> None:
        self.numpy = numpy
        n = indexed_target.n
        self.n = n
        self.graph = indexed_target
        self.radix = [1] * (max_bag + 1)
        for exponent in range(1, max_bag + 1):
            self.radix[exponent] = self.radix[exponent - 1] * n
        self.offsets = numpy.frombuffer(indexed_target.offsets, dtype=numpy.int64)
        self.targets = numpy.frombuffer(indexed_target.targets, dtype=numpy.int64)
        self.degrees = self.offsets[1:] - self.offsets[:-1]
        self.packed = None  # lazy: only pinned-filtering needs bitsets
        self.empty = (
            numpy.empty(0, dtype=numpy.int64),
            numpy.empty(0, dtype=numpy.int64),
        )

    def packed_bitsets(self):
        if self.packed is None:
            self.packed = pack_bitsets(self.graph)
        return self.packed

    def bit_test(self, rows, images, word, bit):
        """``1`` where image is in the bitset row — a vectorised
        ``(bitsets[row] >> image) & 1``."""
        packed = self.packed_bitsets()
        return (packed[rows, word] >> bit) & self.numpy.uint64(1)


def _introduce(state: _Tables, table, position, neighbour_positions, mask):
    numpy = state.numpy
    codes, counts = table
    rows = len(codes)
    if rows == 0:
        return state.empty
    n, radix = state.n, state.radix

    if not neighbour_positions:
        # Unconstrained introduce: every (row, candidate) pair.
        candidates = (
            numpy.arange(n, dtype=numpy.int64)
            if mask is None
            else expand_mask(mask, n)
        )
        per_row = len(candidates)
        if per_row == 0:
            return state.empty
        row_index = numpy.repeat(
            numpy.arange(rows, dtype=numpy.int64), per_row,
        )
        images = numpy.tile(candidates, rows)
    else:
        pinned = [
            (codes // radix[p]) % n if radix[p] > 1 else codes % n
            for p in neighbour_positions
        ]
        if len(pinned) == 1:
            pivot = pinned[0]
        else:
            # Per-row lowest-degree pinned image: the smallest candidate
            # list to gather, the rest are O(1) bit tests.
            stacked = numpy.stack(pinned)
            choice = numpy.argmin(state.degrees[stacked], axis=0)
            pivot = stacked[choice, numpy.arange(rows)]
        lengths = state.degrees[pivot]
        total = int(lengths.sum())
        if total == 0:
            return state.empty
        row_index = numpy.repeat(
            numpy.arange(rows, dtype=numpy.int64), lengths,
        )
        run_starts = numpy.cumsum(lengths) - lengths
        positions = (
            numpy.repeat(state.offsets[pivot] - run_starts, lengths)
            + numpy.arange(total, dtype=numpy.int64)
        )
        images = state.targets[positions]
        if len(pinned) > 1 or mask is not None:
            word = images >> 6
            bit = (images & 63).astype(numpy.uint64)
            keep = numpy.ones(total, dtype=bool)
            if len(pinned) > 1:
                for values in pinned:
                    keep &= state.bit_test(
                        values[row_index], images, word, bit,
                    ).astype(bool)
            if mask is not None:
                mask_row = pack_mask(mask, n)
                keep &= (
                    (mask_row[word] >> bit) & numpy.uint64(1)
                ).astype(bool)
            row_index = row_index[keep]
            images = images[keep]
        if len(images) == 0:
            return state.empty

    base = codes[row_index]
    low = base % radix[position] if radix[position] > 1 else 0
    high = base // radix[position]
    new_codes = low + images * radix[position] + high * radix[position + 1]
    return new_codes, counts[row_index]


def _forget(state: _Tables, table, drop):
    numpy = state.numpy
    codes, counts = table
    if len(codes) == 0:
        return state.empty
    # Group sums stay exact: every group sum is bounded by the total,
    # checked against int64 headroom with Python ints.
    if int(counts.max()) * len(counts) >= _INT64_LIMIT:
        raise KernelUnsupported("overflow", "FORGET merge could exceed int64")
    radix = state.radix
    merged = (codes % radix[drop] if radix[drop] > 1 else 0) + (
        codes // radix[drop + 1]
    ) * radix[drop]
    order = numpy.argsort(merged, kind="stable")
    merged = merged[order]
    boundaries = numpy.flatnonzero(
        numpy.r_[True, merged[1:] != merged[:-1]],
    )
    return merged[boundaries], numpy.add.reduceat(counts[order], boundaries)


def _join(state: _Tables, left, right):
    numpy = state.numpy
    left_codes, left_counts = left
    right_codes, right_counts = right
    if len(left_codes) == 0 or len(right_codes) == 0:
        return state.empty
    common, left_index, right_index = numpy.intersect1d(
        left_codes, right_codes, assume_unique=True, return_indices=True,
    )
    if len(common) == 0:
        return state.empty
    left_hit = left_counts[left_index]
    right_hit = right_counts[right_index]
    if int(left_hit.max()) * int(right_hit.max()) >= _INT64_LIMIT:
        raise KernelUnsupported("overflow", "JOIN product could exceed int64")
    return common, left_hit * right_hit


def execute_tape(
    instructions,
    indexed_target,
    max_bag: int,
    allowed_masks=None,
) -> int:
    """Run a DP tape against ``indexed_target``, vectorised.

    ``max_bag`` bounds the bag size over the whole tape (``width + 1``
    for a nice decomposition).  ``allowed_masks`` maps a pattern vertex
    *label* to a Python-int candidate bitset (the encoded ``allowed``
    restriction); absent vertices get the full pool.

    Returns the exact count, or raises :class:`KernelUnsupported` when
    an int64 bound would be crossed — the caller falls back to the
    pure-Python tape.
    """
    numpy = numpy_or_none()
    if numpy is None:
        raise KernelUnsupported("unavailable", "numpy is not importable")
    n = indexed_target.n
    if not packable(n, max_bag):
        raise KernelUnsupported(
            "overflow", f"bag codes n**{max_bag} exceed int64 (n={n})",
        )
    state = _Tables(numpy, indexed_target, max_bag)

    stack: list[tuple] = []  # (codes, counts) pairs, codes unique
    for instruction in instructions:
        op = instruction[0]
        if op == _LEAF:
            stack.append((
                numpy.zeros(1, dtype=numpy.int64),
                numpy.ones(1, dtype=numpy.int64),
            ))
        elif op == _INTRODUCE:
            _, vertex, position, neighbour_positions = instruction
            mask = (
                allowed_masks.get(vertex)
                if allowed_masks is not None
                else None
            )
            stack.append(
                _introduce(
                    state, stack.pop(), position, neighbour_positions, mask,
                ),
            )
        elif op == _FORGET:
            stack.append(_forget(state, stack.pop(), instruction[1]))
        else:  # _JOIN
            stack.append(_join(state, stack.pop(), stack.pop()))

    (codes, counts) = stack.pop()
    if stack:
        raise AssertionError("tape left extra tables on the stack")
    return int(counts[0]) if len(codes) else 0
