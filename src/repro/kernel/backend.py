"""Kernel backend registry: numpy detection, selection, and accounting.

The vectorised kernel tier (:mod:`repro.kernel`) is strictly optional:
numpy is probed exactly once, never imported at package import time by
anything outside this subpackage, and every consumer keeps its
pure-Python implementation as the differential-testing oracle.  This
module is the single place that decides, per execution, which tier runs:

* :func:`numpy_or_none` — the cached probe.  ``REPRO_KERNEL=python``
  disables the numpy tier process-wide (useful for A/B timing and for
  exercising the oracle path with numpy installed);
  ``REPRO_KERNEL=numpy`` forces it wherever it is applicable, ignoring
  the size thresholds.
* :func:`select` — the per-call cost model.  Vectorisation pays a fixed
  per-ndarray-op overhead, so tiny inputs stay on the pure path; each
  layer (``dp``, ``wl``, ``bitset``, ``matrix``) has its own crossover
  size.  Every decision increments
  ``repro_backend_selected_total{layer=...,backend=...}`` so the obs
  layer shows which tier served each task.
* :func:`note_fallback` — exact big-int safety.  The numpy tiers run in
  int64 with a-priori overflow detection; when a step *could* overflow
  they raise :class:`KernelUnsupported` and the caller re-runs the
  pure-Python path (counted under
  ``repro_kernel_fallback_total{layer=...,reason=...}``).  Results are
  exact either way.
* :func:`force_backend` — a context manager pinning the decision, used
  by the differential tests and the kernel benchmark.

:func:`kernel_report` summarises availability, thresholds, selection
counts, and fallback counts for ``repro engine-stats --backends``.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager

from repro.obs import registry

# Per-layer crossover sizes (input "size" is layer-specific: target
# vertex count for dp/bitset, n + m for wl, matrix order for matrix).
# Below these, per-op ndarray overhead beats the vectorisation win.
DP_MIN_TARGET = 32
WL_MIN_SIZE = 256
BITSET_MIN_TARGET = 96
MATRIX_MIN_ORDER = 1

_THRESHOLDS = {
    "dp": DP_MIN_TARGET,
    "wl": WL_MIN_SIZE,
    "bitset": BITSET_MIN_TARGET,
    "matrix": MATRIX_MIN_ORDER,
}

LAYERS = tuple(sorted(_THRESHOLDS))

_lock = threading.Lock()
_probed = False
_numpy = None
_forced: str | None = None  # None | "python" | "numpy"


class KernelUnsupported(Exception):
    """A numpy tier cannot run this input exactly (int64/packing bounds).

    Raised *before* any wraparound can happen; the caller falls back to
    the pure-Python oracle path, so results are always exact.  A tier
    that got partway (e.g. WL rounds before the round budget ran out)
    may attach its intermediate state as ``partial`` so the fallback can
    resume instead of restarting.
    """

    partial = None

    def __init__(self, reason: str, detail: str = "") -> None:
        super().__init__(detail or reason)
        self.reason = reason


def _env_force() -> str | None:
    value = os.environ.get("REPRO_KERNEL")
    return value if value in ("python", "numpy") else None


def _effective_force() -> str | None:
    return _forced if _forced is not None else _env_force()


def numpy_or_none():
    """The numpy module, or ``None`` — probed once, never raises.

    ``REPRO_KERNEL=python`` makes this return ``None`` even when numpy
    is importable, turning every auto selection into the pure path.
    """
    global _probed, _numpy
    if _effective_force() == "python":
        return None
    if not _probed:
        with _lock:
            if not _probed:
                try:
                    import numpy  # noqa: F401 - probe only

                    _numpy = numpy
                except Exception:  # ImportError, broken installs
                    _numpy = None
                _probed = True
    return _numpy


def numpy_available() -> bool:
    return numpy_or_none() is not None


def _reset_probe_for_tests() -> None:
    """Drop the cached probe so a ``sys.modules`` import block takes
    effect (tests only)."""
    global _probed, _numpy
    with _lock:
        _probed = False
        _numpy = None


@contextmanager
def force_backend(backend: str | None):
    """Pin selection to ``"python"`` or ``"numpy"`` within the block.

    ``"numpy"`` ignores the size thresholds (numpy must be importable);
    ``"python"`` never selects the vectorised tier.  ``None`` restores
    the cost model.  Not safe to nest concurrently across threads with
    different values — benchmark/test affordance, not an API.
    """
    global _forced
    if backend not in (None, "python", "numpy"):
        raise ValueError(f"unknown kernel backend {backend!r}")
    previous = _forced
    _forced = backend
    try:
        yield
    finally:
        _forced = previous


def forced_backend() -> str | None:
    return _forced


# ----------------------------------------------------------------------
# selection + accounting
# ----------------------------------------------------------------------
def _selected_family():
    return registry().counter(
        "repro_backend_selected_total",
        help="Kernel tier chosen per execution, by layer.",
        labelnames=("layer", "backend"),
    )


def _fallback_family():
    return registry().counter(
        "repro_kernel_fallback_total",
        help="Numpy-tier executions rerouted to the pure-Python oracle.",
        labelnames=("layer", "reason"),
    )


def note_selected(layer: str, backend: str) -> None:
    _selected_family().labels(layer=layer, backend=backend).inc()


def note_fallback(layer: str, reason: str) -> None:
    _fallback_family().labels(layer=layer, reason=reason).inc()


def select(layer: str, size: int) -> str:
    """``"numpy"`` or ``"python"`` for one execution of ``layer``.

    ``size`` is the layer's crossover measure.  The decision is recorded
    in ``repro_backend_selected_total``.
    """
    forced = _effective_force()
    if forced is not None:
        backend = forced
        if backend == "numpy" and numpy_or_none() is None:
            raise RuntimeError("REPRO_KERNEL/force_backend: numpy unavailable")
    elif numpy_or_none() is None or size < _THRESHOLDS[layer]:
        backend = "python"
    else:
        backend = "numpy"
    note_selected(layer, backend)
    return backend


def would_select(layer: str, size: int) -> str:
    """:func:`select` without recording — for display (``.explain()``)."""
    forced = _effective_force()
    if forced is not None:
        return forced
    if numpy_or_none() is None or size < _THRESHOLDS[layer]:
        return "python"
    return "numpy"


def resolve(layer: str, size: int, backend: str = "auto") -> str:
    """Resolve an explicit ``backend=`` argument (``auto`` applies the
    cost model; ``python``/``numpy`` are honoured and recorded)."""
    if backend == "auto":
        return select(layer, size)
    if backend not in ("python", "numpy"):
        raise ValueError(f"unknown kernel backend {backend!r}")
    if backend == "numpy" and numpy_or_none() is None:
        raise RuntimeError("backend='numpy' requested but numpy is unavailable")
    note_selected(layer, backend)
    return backend


# ----------------------------------------------------------------------
# reporting
# ----------------------------------------------------------------------
def _family_counts(name: str, key_labels: tuple[str, str]) -> dict[str, int]:
    snapshot = registry().snapshot().get(name)
    counts: dict[str, int] = {}
    if not snapshot:
        return counts
    for sample in snapshot["samples"]:
        labels = sample["labels"]
        key = f"{labels[key_labels[0]]}/{labels[key_labels[1]]}"
        counts[key] = counts.get(key, 0) + int(sample["value"])
    return counts


def kernel_report() -> dict:
    """Availability, thresholds, and selection/fallback counts —
    the payload behind ``repro engine-stats --backends``."""
    module = numpy_or_none()
    return {
        "numpy_available": module is not None,
        "numpy_version": getattr(module, "__version__", None),
        "forced": _effective_force(),
        "layers": list(LAYERS),
        "thresholds": dict(_THRESHOLDS),
        "selected": _family_counts(
            "repro_backend_selected_total", ("layer", "backend"),
        ),
        "fallbacks": _family_counts(
            "repro_kernel_fallback_total", ("layer", "reason"),
        ),
    }
