"""Vectorised 1-WL colour refinement (counting-sort signature passes).

The pure-Python worklist refinement
(:func:`repro.wl.refinement.indexed_colour_partition`) processes one
splitter class at a time; this module computes the same stable partition
round-synchronously with whole-graph array passes:

each round builds, for every vertex at once, the signature
``(own colour, sorted multiset of neighbour colours)`` — neighbour
colours are gathered with one fancy-index over the CSR ``targets``
array, sorted per vertex by a single ``lexsort`` (the counting-sort
discipline: keys are dense class ids), scattered into a padded
``(n, max_degree + 1)`` signature matrix, and collapsed to dense new
class ids by one more ``lexsort`` over the matrix columns plus a
consecutive-row comparison (a vectorised group-by; far cheaper than
``numpy.unique(axis=0)``).  Rounds repeat until the class count stops
growing.

The stable partition is the coarsest equitable partition refining the
seed, which is unique — so the classes agree with the worklist oracle
(class *ids* differ; compare partitions, not ids).

Round-synchronous refinement is O(n + m) per round but needs as many
rounds as the partition takes to stabilise — on long-diameter graphs
(paths, cycles) that is Θ(n) rounds and the worklist's
O((n + m) log n) total wins by a mile.  After :data:`_MAX_ROUNDS`
rounds this module therefore gives up and raises
:class:`KernelUnsupported` *carrying the partial colouring*
(``exc.partial``); the caller re-seeds the worklist with it, so the
vectorised rounds already done are not wasted — refining an
intermediate partition yields the same unique stable partition.

The padded matrix costs ``n × (max_degree + 1)`` int64 cells; graphs
where that exceeds :data:`_CELL_BUDGET` (a hub vertex in a huge sparse
graph) raise :class:`KernelUnsupported` up front and fall back to the
worklist from the original seed.
"""

from __future__ import annotations

from repro.kernel.backend import KernelUnsupported, numpy_or_none

# At 8 bytes per cell this caps the signature matrix at 512 MiB.
_CELL_BUDGET = 1 << 26

# Most graphs where vectorisation pays off stabilise in a handful of
# rounds (random sparse graphs: O(log n) with high probability).  Past
# this budget the graph is long-diameter-shaped and the worklist's
# complexity guarantee should take over (seeded with the partial work).
_MAX_ROUNDS = 32


def _dense_ranks(numpy, signature, n):
    """Collapse signature rows to dense class ids: lexsort the rows,
    compare consecutive sorted rows, cumulative-sum the changes."""
    row_order = numpy.lexsort(signature.T[::-1])
    ordered = signature[row_order]
    changed = numpy.empty(n, dtype=numpy.int64)
    changed[0] = 0
    changed[1:] = numpy.any(ordered[1:] != ordered[:-1], axis=1)
    ranks = numpy.cumsum(changed)
    colours = numpy.empty(n, dtype=numpy.int64)
    colours[row_order] = ranks
    return colours, int(ranks[-1]) + 1


def refine_partition(indexed_graph, initial=None) -> list[int]:
    """The stable 1-WL partition of an
    :class:`~repro.graphs.indexed.IndexedGraph` as a dense class-id list.

    ``initial`` (a per-index id sequence) seeds the partition.  Raises
    :class:`KernelUnsupported` when numpy is unavailable, the padded
    signature matrix would blow the memory budget, or the partition is
    still moving after :data:`_MAX_ROUNDS` rounds (the exception then
    carries the partial colouring in ``.partial`` for the worklist to
    finish).
    """
    numpy = numpy_or_none()
    if numpy is None:
        raise KernelUnsupported("unavailable", "numpy is not importable")
    n = indexed_graph.n
    if n == 0:
        return []

    offsets = numpy.frombuffer(indexed_graph.offsets, dtype=numpy.int64)
    targets = numpy.frombuffer(indexed_graph.targets, dtype=numpy.int64)
    degrees = offsets[1:] - offsets[:-1]
    max_degree = int(degrees.max()) if n else 0
    if n * (max_degree + 1) > _CELL_BUDGET:
        raise KernelUnsupported(
            "memory",
            f"signature matrix n*(max_degree+1) = {n * (max_degree + 1)} "
            "cells exceeds the budget",
        )

    if initial is None:
        colours = numpy.zeros(n, dtype=numpy.int64)
        num_classes = 1
    else:
        _, colours = numpy.unique(
            numpy.asarray(initial, dtype=numpy.int64), return_inverse=True,
        )
        colours = colours.astype(numpy.int64, copy=False).reshape(n)
        num_classes = int(colours.max()) + 1

    sources = numpy.repeat(numpy.arange(n, dtype=numpy.int64), degrees)
    # Column of each CSR slot within its vertex's signature row.
    slot = numpy.arange(len(targets), dtype=numpy.int64) - numpy.repeat(
        offsets[:-1], degrees,
    ) + 1
    # Padding cells (columns past a vertex's degree) are written once and
    # never touched again: the scatter below hits the same cells every
    # round.  n * num_classes stays far inside int64 (both ≤ n ≤ the cell
    # budget), so one single-key argsort replaces a two-key lexsort.
    signature = numpy.full((n, max_degree + 1), -1, dtype=numpy.int64)

    for _ in range(_MAX_ROUNDS):
        if num_classes == n:
            break  # discrete partition: trivially stable
        neighbour_colours = colours[targets]
        # Counting-sort pass: sort edges by (vertex, neighbour colour) so
        # every vertex's neighbour multiset lands in sorted order.  Ties
        # are exact duplicates, so an unstable sort is fine.
        order = numpy.argsort(sources * num_classes + neighbour_colours)
        signature[:, 0] = colours
        signature[sources, slot] = neighbour_colours[order]
        colours, new_classes = _dense_ranks(numpy, signature, n)
        if new_classes == num_classes:
            break
        num_classes = new_classes
    else:
        exc = KernelUnsupported(
            "slow-convergence",
            f"partition still moving after {_MAX_ROUNDS} rounds",
        )
        exc.partial = colours.tolist()
        raise exc
    return colours.tolist()
