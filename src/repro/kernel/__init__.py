"""repro.kernel — the optional vectorised (numpy) evaluation tier.

Compiles the existing :class:`~repro.engine.plans.CountPlan` / WL /
bitset abstractions onto ndarray kernels when numpy is importable:

* :mod:`repro.kernel.dp_numpy` — the DP instruction tape as batched
  packed-code array steps;
* :mod:`repro.kernel.wl_numpy` — colour refinement as counting-sort
  signature passes;
* :mod:`repro.kernel.bitset_numpy` — candidate pools as packed
  ``uint64`` bitset matrices.

:mod:`repro.kernel.backend` owns detection, the per-layer cost model,
forced-selection overrides (``REPRO_KERNEL`` / :func:`force_backend`),
and the ``repro_backend_selected_total`` /
``repro_kernel_fallback_total`` metric families.  numpy is **never**
imported unless available; every consumer keeps its pure-Python path as
the differential-testing oracle and falls back to it whenever a
vectorised step could leave int64 (results are exact either way).

This package itself imports neither numpy nor the compute layers at
module load — it is safe to import anywhere.
"""

from repro.kernel.dp_numpy import packable as dp_packable
from repro.kernel.backend import (
    KernelUnsupported,
    force_backend,
    kernel_report,
    note_fallback,
    note_selected,
    numpy_available,
    numpy_or_none,
    resolve,
    select,
    would_select,
)

__all__ = [
    "KernelUnsupported",
    "dp_packable",
    "force_backend",
    "kernel_report",
    "note_fallback",
    "note_selected",
    "numpy_available",
    "numpy_or_none",
    "resolve",
    "select",
    "would_select",
]
