"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so downstream users
can catch a single base class.  More specific subclasses communicate which
subsystem rejected the input.

Every class carries a stable machine-readable ``code`` (kebab-case) that the
counting service echoes in its structured HTTP error payloads
(``{"kind": "error", "error": ..., "code": ...}``) and the client re-raises
with.  Codes are part of the wire contract: they never change once shipped,
even if the human-readable message does.

:class:`EngineError` and :class:`UpdateError` additionally subclass the
stdlib exception their call sites historically raised (``ValueError`` and
:class:`GraphError` respectively), so pre-existing ``except`` clauses keep
working.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""

    code = "repro-error"


class GraphError(ReproError):
    """Invalid graph construction or graph operation (e.g. self-loops)."""

    code = "bad-graph"


class DecompositionError(ReproError):
    """A tree decomposition violates (T1), (T2) or (T3) of Definition 10."""

    code = "bad-decomposition"


class QueryError(ReproError):
    """Invalid conjunctive query (e.g. free variables not in the graph)."""

    code = "bad-query"


class ParseError(QueryError):
    """The textual query representation could not be parsed."""

    code = "parse-error"


class IntractableError(ReproError):
    """The requested exact computation exceeds the configured size limits."""

    code = "intractable"


class WitnessError(ReproError):
    """A lower-bound witness could not be constructed or verified."""

    code = "witness-failed"


class TaskError(ReproError):
    """A task spec is malformed or not runnable on the chosen executor."""

    code = "bad-task"


class EngineError(ReproError, ValueError):
    """Invalid engine configuration or counting request.

    Subclasses ``ValueError`` because the engine/cache layer historically
    raised that for bad limits and unknown methods.
    """

    code = "engine-error"


class ServiceError(ReproError):
    """An error response (or transport failure) from the counting service.

    Raised by the client for non-200 responses (``status`` and ``code``
    mirror the structured error payload) and by the service layer for
    invalid configuration (``status`` 0).  Deliberately *not* a
    ``ValueError`` subclass — transport failures dominate its use, and
    making every unreachable-host error a ``ValueError`` would be wrong;
    the scheduler/server config raises that historically threw
    ``ValueError`` now throw this instead.
    """

    code = "service-error"

    def __init__(self, message: str, status: int = 0, code: str | None = None) -> None:
        super().__init__(message)
        self.status = status
        if code is not None:
            self.code = code


class ObservabilityError(ReproError, ValueError):
    """Invalid metrics/tracing usage (bad label set, negative counter inc).

    Subclasses ``ValueError`` because misuse of an instrument is an
    argument error at the call site, never a runtime serving failure.
    """

    code = "obs-error"


class UpdateError(GraphError, ValueError):
    """A dynamic-target update or maintenance request was rejected.

    Subclasses :class:`GraphError` (the dynamic layer historically raised
    that for bad batches) and ``ValueError`` (the mode/limit validations
    historically raised that), so pre-existing ``except`` clauses keep
    working.
    """

    code = "update-rejected"
