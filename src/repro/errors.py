"""Exception hierarchy for the ``repro`` library.

All library-raised errors derive from :class:`ReproError` so downstream users
can catch a single base class.  More specific subclasses communicate which
subsystem rejected the input.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """Invalid graph construction or graph operation (e.g. self-loops)."""


class DecompositionError(ReproError):
    """A tree decomposition violates (T1), (T2) or (T3) of Definition 10."""


class QueryError(ReproError):
    """Invalid conjunctive query (e.g. free variables not in the graph)."""


class ParseError(QueryError):
    """The textual query representation could not be parsed."""


class IntractableError(ReproError):
    """The requested exact computation exceeds the configured size limits."""


class WitnessError(ReproError):
    """A lower-bound witness could not be constructed or verified."""
