"""Backtracking homomorphism enumeration and counting.

This is the reference implementation every optimised path is tested against.
It supports two extras that the paper's constructions need everywhere:

* ``fixed`` — a partial assignment that must be extended (used for
  answer-set semantics, Definition 8);
* ``allowed`` — per-pattern-vertex candidate restrictions (used for
  colour-prescribed and τ-restricted homomorphisms, Definitions 30/48).
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.graphs.graph import Graph, Vertex

Assignment = dict[Vertex, Vertex]


def _variable_order(pattern: Graph, fixed: Mapping[Vertex, Vertex]) -> list[Vertex]:
    """Order unassigned pattern vertices for search: stay connected to the
    assigned region, preferring high-degree vertices (fail-first)."""
    assigned = set(fixed)
    remaining = [v for v in pattern.vertices() if v not in assigned]
    order: list[Vertex] = []
    frontier_scores = {
        v: sum(1 for u in pattern.neighbours(v) if u in assigned) for v in remaining
    }
    remaining_set = set(remaining)
    while remaining_set:
        vertex = max(
            remaining_set,
            key=lambda v: (frontier_scores[v], pattern.degree(v), repr(v)),
        )
        order.append(vertex)
        remaining_set.remove(vertex)
        for u in pattern.neighbours(vertex):
            if u in remaining_set:
                frontier_scores[u] += 1
    return order


def enumerate_homomorphisms(
    pattern: Graph,
    target: Graph,
    fixed: Mapping[Vertex, Vertex] | None = None,
    allowed: Mapping[Vertex, frozenset] | None = None,
) -> Iterator[Assignment]:
    """Yield every homomorphism ``pattern → target`` extending ``fixed``.

    ``allowed[v]`` (when present) restricts the image of pattern vertex
    ``v``.  The ``fixed`` assignment is validated against pattern edges and
    ``allowed`` before the search starts.
    """
    fixed = dict(fixed or {})
    for v, image in fixed.items():
        if not target.has_vertex(image):
            return
        if allowed is not None and v in allowed and image not in allowed[v]:
            return
    for v in fixed:
        for u in pattern.neighbours(v):
            if u in fixed and not target.has_edge(fixed[v], fixed[u]):
                return

    order = _variable_order(pattern, fixed)
    assignment: Assignment = dict(fixed)
    target_vertices = target.vertices()

    def candidates(vertex: Vertex) -> Iterator[Vertex]:
        assigned_neighbours = [
            assignment[u] for u in pattern.neighbours(vertex) if u in assignment
        ]
        if assigned_neighbours:
            pool = set(target.neighbours(assigned_neighbours[0]))
            for image in assigned_neighbours[1:]:
                pool &= target.neighbours(image)
        else:
            pool = set(target_vertices)
        if allowed is not None and vertex in allowed:
            pool &= allowed[vertex]
        return iter(sorted(pool, key=repr))

    def extend(index: int) -> Iterator[Assignment]:
        if index == len(order):
            yield dict(assignment)
            return
        vertex = order[index]
        for image in candidates(vertex):
            assignment[vertex] = image
            yield from extend(index + 1)
            del assignment[vertex]

    yield from extend(0)


def count_homomorphisms_brute(
    pattern: Graph,
    target: Graph,
    fixed: Mapping[Vertex, Vertex] | None = None,
    allowed: Mapping[Vertex, frozenset] | None = None,
) -> int:
    """``|Hom(pattern, target)|`` (restricted), by exhaustive backtracking."""
    return sum(1 for _ in enumerate_homomorphisms(pattern, target, fixed, allowed))


def exists_homomorphism(
    pattern: Graph,
    target: Graph,
    fixed: Mapping[Vertex, Vertex] | None = None,
    allowed: Mapping[Vertex, frozenset] | None = None,
) -> bool:
    """Does any homomorphism extending ``fixed`` exist?"""
    for _ in enumerate_homomorphisms(pattern, target, fixed, allowed):
        return True
    return False
