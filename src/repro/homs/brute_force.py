"""Backtracking homomorphism enumeration and counting.

This is the reference implementation every optimised path is tested against.
It supports two extras that the paper's constructions need everywhere:

* ``fixed`` — a partial assignment that must be extended (used for
  answer-set semantics, Definition 8);
* ``allowed`` — per-pattern-vertex candidate restrictions (used for
  colour-prescribed and τ-restricted homomorphisms, Definitions 30/48).

The public API speaks labels; the search itself runs entirely in index
space over :class:`~repro.graphs.indexed.IndexedGraph`: candidate pools
are neighbourhood-bitset intersections (one big-int AND per assigned
neighbour instead of a ``frozenset`` intersection of rich labels), and
candidates are visited in ascending codec-index order — a total order that
cannot collide, unlike the ``repr``-sort the seed used.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.graphs.graph import Graph, Vertex
from repro.graphs.indexed import IndexedGraph

Assignment = dict[Vertex, Vertex]


def _search_order(pattern: IndexedGraph, assigned: set[int]) -> list[int]:
    """Order unassigned pattern indices for search: stay connected to the
    assigned region, preferring high-degree vertices (fail-first); ties
    break on the index itself (labels never enter the comparison)."""
    adjacency = pattern.adjacency_lists()
    remaining = [v for v in range(pattern.n) if v not in assigned]
    frontier_scores = {
        v: sum(1 for u in adjacency[v] if u in assigned) for v in remaining
    }
    order: list[int] = []
    remaining_set = set(remaining)
    while remaining_set:
        vertex = max(
            remaining_set,
            key=lambda v: (frontier_scores[v], len(adjacency[v]), v),
        )
        order.append(vertex)
        remaining_set.remove(vertex)
        for u in adjacency[vertex]:
            if u in remaining_set:
                frontier_scores[u] += 1
    return order


class _Search:
    """A validated, index-space homomorphism search problem."""

    __slots__ = (
        "pattern",
        "target",
        "fixed",
        "order",
        "pinned",
        "pools",
    )

    def __init__(self, pattern, target, fixed, order, pinned, pools):
        self.pattern = pattern
        self.target = target
        self.fixed = fixed          # pattern index -> target index
        self.order = order          # search order of free pattern indices
        self.pinned = pinned        # per position: already-assigned neighbours
        self.pools = pools          # per position: static candidate bitset


def _prepare(
    pattern: Graph,
    target: Graph,
    fixed: Mapping[Vertex, Vertex] | None,
    allowed: Mapping[Vertex, frozenset] | None,
) -> _Search | None:
    """Encode the problem; ``None`` means "no homomorphisms exist"."""
    fixed = dict(fixed or {})
    for v, image in fixed.items():
        if not target.has_vertex(image):
            return None
        if allowed is not None and v in allowed and image not in allowed[v]:
            return None

    indexed_pattern = pattern.to_indexed()
    indexed_target = target.to_indexed()
    pattern_codec = indexed_pattern.codec
    target_codec = indexed_target.codec

    # encode() raises GraphError for fixed vertices outside the pattern —
    # the same contract the label-space search had.
    fixed_indices = {
        pattern_codec.encode(v): target_codec.encode(image)
        for v, image in fixed.items()
    }
    pattern_adjacency = indexed_pattern.adjacency_lists()
    target_bits = indexed_target.bitsets()
    for v, image in fixed_indices.items():
        for u in pattern_adjacency[v]:
            if u in fixed_indices and not (target_bits[image] >> fixed_indices[u]) & 1:
                return None

    full_pool = (1 << indexed_target.n) - 1
    order = _search_order(indexed_pattern, set(fixed_indices))
    pools = [full_pool] * len(order)
    if allowed is not None:
        for label, pool in allowed.items():
            v = pattern_codec.encode_or_none(label)
            if v is None:
                continue
            try:
                position = order.index(v)
            except ValueError:
                continue
            pools[position] = target_codec.encode_mask(pool)

    pinned: list[tuple[int, ...]] = []
    assigned = set(fixed_indices)
    for v in order:
        pinned.append(tuple(u for u in pattern_adjacency[v] if u in assigned))
        assigned.add(v)
    return _Search(
        indexed_pattern, indexed_target, fixed_indices, order, pinned, pools,
    )


def enumerate_homomorphisms(
    pattern: Graph,
    target: Graph,
    fixed: Mapping[Vertex, Vertex] | None = None,
    allowed: Mapping[Vertex, frozenset] | None = None,
) -> Iterator[Assignment]:
    """Yield every homomorphism ``pattern → target`` extending ``fixed``.

    ``allowed[v]`` (when present) restricts the image of pattern vertex
    ``v``.  The ``fixed`` assignment is validated against pattern edges and
    ``allowed`` before the search starts.  Yielded assignments are
    label-space dicts; the search itself never touches labels.
    """
    search = _prepare(pattern, target, fixed, allowed)
    if search is None:
        return
    pattern_labels = search.pattern.codec.labels
    target_labels = search.target.codec.labels
    target_bits = search.target.bitsets()
    order, pinned, pools = search.order, search.pinned, search.pools
    depth = len(order)
    assignment: dict[int, int] = dict(search.fixed)

    def extend(position: int) -> Iterator[Assignment]:
        if position == depth:
            yield {
                pattern_labels[v]: target_labels[image]
                for v, image in assignment.items()
            }
            return
        vertex = order[position]
        pool = pools[position]
        for u in pinned[position]:
            pool &= target_bits[assignment[u]]
        while pool:
            low_bit = pool & -pool
            pool ^= low_bit
            assignment[vertex] = low_bit.bit_length() - 1
            yield from extend(position + 1)
        assignment.pop(vertex, None)

    yield from extend(0)


def count_homomorphisms_brute(
    pattern: Graph,
    target: Graph,
    fixed: Mapping[Vertex, Vertex] | None = None,
    allowed: Mapping[Vertex, frozenset] | None = None,
    backend: str = "auto",
) -> int:
    """``|Hom(pattern, target)|`` (restricted), by exhaustive backtracking.

    Pure index-space counting: no assignment dicts are materialised.

    ``backend`` picks the candidate-pool tier for the bottom two search
    levels: with ``'numpy'`` (or ``'auto'`` on large-enough targets) the
    innermost double loop collapses into one batch over packed
    ``uint64`` bitset rows — gather the candidate rows, AND the static
    pool of the last vertex, sum popcounts — while ``'python'`` keeps
    the big-int pools end to end (the oracle; counts agree exactly).
    """
    search = _prepare(pattern, target, fixed, allowed)
    if search is None:
        return 0
    target_bits = search.target.bitsets()
    order, pinned, pools = search.order, search.pinned, search.pools
    depth = len(order)
    images = [0] * search.pattern.n
    for v, image in search.fixed.items():
        images[v] = image

    from repro import kernel

    leaf_kernel = None
    if depth >= 2:
        tier = kernel.resolve("bitset", search.target.n, backend)
        if tier == "numpy":
            from repro.kernel import bitset_numpy

            leaf_kernel = bitset_numpy
            packed = bitset_numpy.pack_bitsets(search.target)
            n_target = search.target.n

    def count_leaf_pairs(pool: int, vertex: int) -> int:
        """The bottom two levels in one vectorised step: ``pool`` holds
        the candidates for ``vertex`` (= ``order[depth - 2]``)."""
        base_last = pools[depth - 1]
        vertex_pinned = False
        for u in pinned[depth - 1]:
            if u == vertex:
                vertex_pinned = True
            else:
                base_last &= target_bits[images[u]]
        if not vertex_pinned:
            return pool.bit_count() * base_last.bit_count()
        if not pool or not base_last:
            return 0
        if pool.bit_count() < 32:
            # Too few candidate rows to amortise the ndarray round-trip;
            # the big-int pools win (same arithmetic, oracle-identical).
            total = 0
            while pool:
                low_bit = pool & -pool
                pool ^= low_bit
                total += (
                    base_last & target_bits[low_bit.bit_length() - 1]
                ).bit_count()
            return total
        candidates = leaf_kernel.expand_mask(pool, n_target)
        return leaf_kernel.leaf_pair_count(
            candidates, packed, leaf_kernel.pack_mask(base_last, n_target),
        )

    def count_from(position: int) -> int:
        if position == depth:
            return 1
        pool = pools[position]
        for u in pinned[position]:
            pool &= target_bits[images[u]]
        if position == depth - 1:
            return pool.bit_count()
        vertex = order[position]
        if leaf_kernel is not None and position == depth - 2:
            return count_leaf_pairs(pool, vertex)
        total = 0
        while pool:
            low_bit = pool & -pool
            pool ^= low_bit
            images[vertex] = low_bit.bit_length() - 1
            total += count_from(position + 1)
        return total

    return count_from(0)


def exists_homomorphism(
    pattern: Graph,
    target: Graph,
    fixed: Mapping[Vertex, Vertex] | None = None,
    allowed: Mapping[Vertex, frozenset] | None = None,
) -> bool:
    """Does any homomorphism extending ``fixed`` exist?"""
    search = _prepare(pattern, target, fixed, allowed)
    if search is None:
        return False
    target_bits = search.target.bitsets()
    order, pinned, pools = search.order, search.pinned, search.pools
    depth = len(order)
    images = [0] * search.pattern.n
    for v, image in search.fixed.items():
        images[v] = image

    def search_from(position: int) -> bool:
        if position == depth:
            return True
        pool = pools[position]
        for u in pinned[position]:
            pool &= target_bits[images[u]]
        vertex = order[position]
        while pool:
            low_bit = pool & -pool
            pool ^= low_bit
            images[vertex] = low_bit.bit_length() - 1
            if search_from(position + 1):
                return True
        return False

    return search_from(0)
