"""Colour-restricted homomorphism counts (Definitions 28, 30, 48).

Given an ``F``-colouring ``c`` of the target ``G`` (a homomorphism
``c : G → F``) and a homomorphism ``τ : H → F``:

* ``Hom_τ(H, G, F, c)`` — homomorphisms ``h : H → G`` with ``c ∘ h = τ``
  (Definition 30);
* ``cpHom(H, (G, c))`` — the colour-*prescribed* case ``F = H`` and
  ``τ = id`` (Definition 48).

Both reduce to ordinary counting with ``allowed`` sets: the image of pattern
vertex ``v`` must lie in the colour class ``c^{-1}(τ(v))``, so the
treewidth-DP running time carries over.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.graphs.graph import Graph, Vertex
from repro.homs.brute_force import enumerate_homomorphisms
from repro.homs.counting import Method, count_homomorphisms


def colour_classes(target: Graph, colouring: Mapping[Vertex, Vertex]) -> dict[Vertex, frozenset]:
    """``B_v = c^{-1}(v)`` for each colour ``v`` in the image of ``c``."""
    classes: dict[Vertex, set[Vertex]] = {}
    for vertex in target.vertices():
        classes.setdefault(colouring[vertex], set()).add(vertex)
    return {colour: frozenset(block) for colour, block in classes.items()}


def is_colouring(target: Graph, palette: Graph, colouring: Mapping[Vertex, Vertex]) -> bool:
    """Is ``colouring`` a homomorphism ``target → palette`` (Definition 28)?"""
    for vertex in target.vertices():
        if vertex not in colouring or not palette.has_vertex(colouring[vertex]):
            return False
    return all(
        palette.has_edge(colouring[u], colouring[v]) for u, v in target.edges()
    )


def _allowed_from_tau(
    pattern: Graph,
    target: Graph,
    colouring: Mapping[Vertex, Vertex],
    tau: Mapping[Vertex, Vertex],
) -> dict[Vertex, frozenset]:
    classes = colour_classes(target, colouring)
    empty: frozenset = frozenset()
    return {v: classes.get(tau[v], empty) for v in pattern.vertices()}


def count_hom_tau(
    pattern: Graph,
    target: Graph,
    colouring: Mapping[Vertex, Vertex],
    tau: Mapping[Vertex, Vertex],
    method: Method = "auto",
) -> int:
    """``|Hom_τ(pattern, target, F, c)|`` (Definition 30)."""
    allowed = _allowed_from_tau(pattern, target, colouring, tau)
    return count_homomorphisms(pattern, target, method=method, allowed=allowed)


def enumerate_hom_tau(
    pattern: Graph,
    target: Graph,
    colouring: Mapping[Vertex, Vertex],
    tau: Mapping[Vertex, Vertex],
) -> Iterator[dict[Vertex, Vertex]]:
    """All homomorphisms counted by :func:`count_hom_tau`."""
    allowed = _allowed_from_tau(pattern, target, colouring, tau)
    yield from enumerate_homomorphisms(pattern, target, allowed=allowed)


def count_cp_hom(
    pattern: Graph,
    target: Graph,
    colouring: Mapping[Vertex, Vertex],
    method: Method = "auto",
) -> int:
    """``|cpHom(pattern, (target, c))|`` (Definition 48): ``τ = id``."""
    identity = {v: v for v in pattern.vertices()}
    return count_hom_tau(pattern, target, colouring, identity, method=method)


def enumerate_cp_hom(
    pattern: Graph,
    target: Graph,
    colouring: Mapping[Vertex, Vertex],
) -> Iterator[dict[Vertex, Vertex]]:
    """All colour-prescribed homomorphisms."""
    identity = {v: v for v in pattern.vertices()}
    yield from enumerate_hom_tau(pattern, target, colouring, identity)


def hom_partition_by_tau(
    pattern: Graph,
    target: Graph,
    palette: Graph,
    colouring: Mapping[Vertex, Vertex],
    method: Method = "auto",
) -> dict[tuple, int]:
    """Observation 31 as data: ``|Hom(H, G)| = Σ_τ |Hom_τ(H, G, F, c)|``.

    Returns a map from each ``τ ∈ Hom(H, F)`` (encoded as a sorted tuple of
    pairs) to ``|Hom_τ|``.  Summing the values gives ``|Hom(H, G)|``, which
    the tests assert.
    """
    result: dict[tuple, int] = {}
    for tau in enumerate_homomorphisms(pattern, palette):
        key = tuple(sorted(tau.items(), key=lambda kv: repr(kv[0])))
        result[key] = count_hom_tau(pattern, target, colouring, tau, method=method)
    return result
