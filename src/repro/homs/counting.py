"""Unified homomorphism-counting entry point.

``count_homomorphisms`` dispatches between the brute-force backtracking
counter and the treewidth DP.  The DP wins whenever the pattern has small
treewidth relative to its size; the brute-force search wins on tiny patterns
because it avoids the decomposition overhead.  The crossover is measured in
``benchmarks/bench_ablation_homs.py``.
"""

from __future__ import annotations

from typing import Literal, Mapping

from repro.graphs.graph import Graph, Vertex
from repro.homs.brute_force import count_homomorphisms_brute
from repro.homs.treewidth_dp import count_homomorphisms_dp

Method = Literal["auto", "brute", "dp"]

# Patterns at or below this many vertices are counted by backtracking when
# method='auto'; above it the treewidth DP takes over.
_AUTO_BRUTE_LIMIT = 5


def count_homomorphisms(
    pattern: Graph,
    target: Graph,
    method: Method = "auto",
    allowed: Mapping[Vertex, frozenset] | None = None,
) -> int:
    """``|Hom(pattern, target)|``, optionally restricted by ``allowed``.

    Parameters
    ----------
    method:
        ``'brute'`` forces backtracking, ``'dp'`` forces the treewidth DP,
        ``'auto'`` (default) picks by pattern size.
    allowed:
        Optional per-pattern-vertex candidate sets (colour restrictions).
    """
    if method == "brute":
        return count_homomorphisms_brute(pattern, target, allowed=allowed)
    if method == "dp":
        return count_homomorphisms_dp(pattern, target, allowed=allowed)
    if method != "auto":
        raise ValueError(f"unknown method {method!r}")
    if pattern.num_vertices() <= _AUTO_BRUTE_LIMIT:
        return count_homomorphisms_brute(pattern, target, allowed=allowed)
    return count_homomorphisms_dp(pattern, target, allowed=allowed)


def hom_vector(
    patterns: list[Graph],
    target: Graph,
    method: Method = "auto",
) -> tuple[int, ...]:
    """The homomorphism-count profile of ``target`` over ``patterns``.

    Profiles over graph classes are how homomorphism indistinguishability
    (Section 5.1) is decided in practice.
    """
    return tuple(count_homomorphisms(p, target, method=method) for p in patterns)
