"""Unified homomorphism-counting entry point.

``count_homomorphisms`` dispatches between the brute-force backtracking
counter, the treewidth DP, and — for ``method='auto'`` — the
:class:`~repro.engine.engine.HomEngine`, which compiles each pattern once
(matrix closed form, DP instruction tape, or brute force, chosen by a
treewidth-aware cost model) and caches both plans and finished counts.

The explicit ``'brute'``/``'dp'`` methods bypass the engine entirely; they
are the uncached reference backends the engine is tested against.
"""

from __future__ import annotations

from typing import Literal, Mapping

from repro.errors import EngineError
from repro.graphs.graph import Graph, Vertex
from repro.homs.brute_force import count_homomorphisms_brute
from repro.homs.treewidth_dp import count_homomorphisms_dp

Method = Literal["auto", "brute", "dp"]


def count_homomorphisms(
    pattern: Graph,
    target: Graph,
    method: Method = "auto",
    allowed: Mapping[Vertex, frozenset] | None = None,
) -> int:
    """``|Hom(pattern, target)|``, optionally restricted by ``allowed``.

    Parameters
    ----------
    method:
        ``'brute'`` forces backtracking, ``'dp'`` forces the treewidth DP,
        ``'auto'`` (default) delegates to the shared
        :class:`~repro.engine.engine.HomEngine`: the backend is chosen by a
        greedy-treewidth cost model (dense small patterns go to brute
        force, sparse large ones to the DP, paths/cycles to closed-form
        linear algebra) and repeated calls reuse compiled plans and cached
        counts.
    allowed:
        Optional per-pattern-vertex candidate sets (colour restrictions).
    """
    if method == "brute":
        return count_homomorphisms_brute(pattern, target, allowed=allowed)
    if method == "dp":
        return count_homomorphisms_dp(pattern, target, allowed=allowed)
    if method != "auto":
        raise EngineError(f"unknown method {method!r}")
    if allowed is not None:
        # Colour restrictions are label-bound engine internals; they stay
        # below the task layer.  Imported lazily: repro.engine pulls in the
        # treewidth stack, and the homs package must stay importable from
        # its own submodules.
        from repro.engine.engine import default_engine

        return default_engine().count(pattern, target, allowed=allowed)
    # The unrestricted auto path is a thin shim over the task API, so this
    # entry point, `Session.run(HomCountTask(...))`, the service, and the
    # dynamic layer all share one execution route.
    from repro.api.session import default_session

    return default_session().run_hom_count(pattern, target)


def hom_vector(
    patterns: list[Graph],
    target: Graph,
    method: Method = "auto",
) -> tuple[int, ...]:
    """The homomorphism-count profile of ``target`` over ``patterns``.

    Profiles over graph classes are how homomorphism indistinguishability
    (Section 5.1) is decided in practice.  ``method='auto'`` evaluates the
    profile through the engine, so the pattern family is compiled once per
    process however many targets are profiled.
    """
    if method == "auto":
        from repro.engine.engine import default_engine

        return default_engine().hom_vector(patterns, target)
    return tuple(count_homomorphisms(p, target, method=method) for p in patterns)
