"""Homomorphism counting by dynamic programming over a nice tree
decomposition of the pattern.

Running time ``O(#nodes · |V(G)|^{tw(H)+1})`` — the classical algorithm that
makes Definition 19 usable: homomorphism counts from low-treewidth patterns
are polynomial-time computable, which is exactly why k-WL-equivalence is
decidable via them.

Supports the same ``allowed`` restriction as the brute-force counter, so
colour-prescribed homomorphism counts (Definitions 30/48) inherit the
treewidth-parameterised running time.

DP tables are keyed by tuples of *target indices* (the
:class:`~repro.graphs.indexed.IndexedGraph` encoding), bags are ordered by
*pattern index* — a total order, unlike the seed's ``repr``-sort, which
could collide when two labels shared a ``repr`` — and edge checks are
neighbourhood-bitset intersections.  For a pattern compiled once and
executed many times, use :class:`repro.engine.plans.DPPlan` instead; this
module is the uncached reference backend.
"""

from __future__ import annotations

from typing import Mapping

from repro.graphs.graph import Graph, Vertex
from repro.treewidth.exact import optimal_tree_decomposition
from repro.treewidth.nice import NiceNode, nice_tree_decomposition

# A DP table maps "bag assignment" keys to counts.  Keys are tuples of
# target indices, ordered by the pattern indices of the node's bag.
_Table = dict[tuple, int]


def count_homomorphisms_dp(
    pattern: Graph,
    target: Graph,
    allowed: Mapping[Vertex, frozenset] | None = None,
    root: NiceNode | None = None,
    backend: str = "auto",
) -> int:
    """``|Hom(pattern, target)|`` via tree-decomposition DP.

    ``root`` can supply a pre-computed nice decomposition of ``pattern``
    (useful when counting against many targets, e.g. the WL
    indistinguishability oracle); otherwise an optimal one is computed.

    ``backend`` picks the table-evaluation tier: ``'python'`` is the
    in-line dict DP below (the differential oracle), ``'numpy'`` lowers
    the decomposition to the compiled instruction tape and evaluates it
    with the vectorised kernel (:mod:`repro.kernel.dp_numpy`), and
    ``'auto'`` lets the kernel cost model decide per target.  All tiers
    return the same exact count; int64-unsafe inputs fall back here.
    """
    if pattern.num_vertices() == 0:
        return 1
    if target.num_vertices() == 0:
        return 0
    if root is None:
        decomposition = optimal_tree_decomposition(pattern)
        root = nice_tree_decomposition(decomposition)

    from repro import kernel

    tier = kernel.resolve("dp", target.num_vertices(), backend)
    if tier == "numpy":
        value = _count_via_tape(pattern, target, allowed, root)
        if value is not None:
            return value

    indexed_pattern = pattern.to_indexed()
    indexed_target = target.to_indexed()
    encode = indexed_pattern.codec.encode
    pattern_adjacency = indexed_pattern.adjacency_lists()
    target_bits = indexed_target.bitsets()
    full_pool = (1 << indexed_target.n) - 1

    def bag_order(bag: frozenset) -> list[int]:
        return sorted(encode(v) for v in bag)

    def pool_for(vertex: Vertex) -> int:
        if allowed is not None and vertex in allowed:
            return indexed_target.codec.encode_mask(allowed[vertex])
        return full_pool

    tables: dict[int, _Table] = {}

    for node in root.iter_postorder():
        if node.kind == "leaf":
            table: _Table = {(): 1}
        elif node.kind == "introduce":
            child = node.children[0]
            child_table = tables.pop(id(child))
            child_order = bag_order(child.bag)
            vertex_index = encode(node.vertex)
            position = bag_order(node.bag).index(vertex_index)
            child_bag_indices = set(child_order)
            neighbour_positions = [
                child_order.index(u)
                for u in pattern_adjacency[vertex_index]
                if u in child_bag_indices
            ]
            base_pool = pool_for(node.vertex)
            table = {}
            for key, count in child_table.items():
                pool = base_pool
                for neighbour_position in neighbour_positions:
                    pool &= target_bits[key[neighbour_position]]
                while pool:
                    low_bit = pool & -pool
                    pool ^= low_bit
                    image = low_bit.bit_length() - 1
                    new_key = key[:position] + (image,) + key[position:]
                    table[new_key] = table.get(new_key, 0) + count
        elif node.kind == "forget":
            child = node.children[0]
            child_table = tables.pop(id(child))
            drop = bag_order(child.bag).index(encode(node.vertex))
            table = {}
            for key, count in child_table.items():
                new_key = key[:drop] + key[drop + 1:]
                table[new_key] = table.get(new_key, 0) + count
        elif node.kind == "join":
            left, right = node.children
            left_table = tables.pop(id(left))
            right_table = tables.pop(id(right))
            if len(left_table) > len(right_table):
                left_table, right_table = right_table, left_table
            table = {}
            for key, count in left_table.items():
                other = right_table.get(key)
                if other:
                    table[key] = count * other
        else:  # pragma: no cover - validate_nice rejects unknown kinds
            raise AssertionError(f"unknown node kind {node.kind!r}")
        tables[id(node)] = table

    root_table = tables[id(root)]
    return root_table.get((), 0)


def _count_via_tape(pattern, target, allowed, root: NiceNode) -> int | None:
    """Lower ``root`` to the compiled instruction tape and run it on the
    vectorised kernel; ``None`` means "fall back to the dict DP"."""
    from repro import kernel
    from repro.engine.plans import _compile_instructions
    from repro.kernel import dp_numpy

    indexed_target = target.to_indexed()
    max_bag = root.width() + 1
    if not dp_numpy.packable(indexed_target.n, max_bag):
        kernel.note_fallback("dp", "overflow")
        return None
    if allowed is None:
        masks = None
    else:
        encode_mask = indexed_target.codec.encode_mask
        masks = {vertex: encode_mask(pool) for vertex, pool in allowed.items()}
    # Memoise the lowered tape on the decomposition root: repeated calls
    # with a prepared_pattern() root (the hom-profile access shape) pay
    # the pattern-side compile once, like DPPlan does.
    cache = getattr(root, "_tape_cache", None)
    if cache is None or cache[0] is not pattern:
        cache = (pattern, _compile_instructions(pattern, root))
        root._tape_cache = cache
    try:
        return dp_numpy.execute_tape(
            cache[1], indexed_target, max_bag,
            allowed_masks=masks,
        )
    except kernel.KernelUnsupported as exc:
        kernel.note_fallback("dp", exc.reason)
        return None


def prepared_pattern(pattern: Graph) -> NiceNode:
    """Pre-compute a nice decomposition for repeated counting calls."""
    return nice_tree_decomposition(optimal_tree_decomposition(pattern))
