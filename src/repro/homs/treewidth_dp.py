"""Homomorphism counting by dynamic programming over a nice tree
decomposition of the pattern.

Running time ``O(#nodes · |V(G)|^{tw(H)+1})`` — the classical algorithm that
makes Definition 19 usable: homomorphism counts from low-treewidth patterns
are polynomial-time computable, which is exactly why k-WL-equivalence is
decidable via them.

Supports the same ``allowed`` restriction as the brute-force counter, so
colour-prescribed homomorphism counts (Definitions 30/48) inherit the
treewidth-parameterised running time.
"""

from __future__ import annotations

from typing import Mapping

from repro.graphs.graph import Graph, Vertex
from repro.treewidth.exact import optimal_tree_decomposition
from repro.treewidth.nice import NiceNode, nice_tree_decomposition

# A DP table maps "bag assignment" keys to counts.  Keys are tuples of
# images, ordered by the repr-sorted bag vertices of the node.
_Table = dict[tuple, int]


def _bag_order(bag: frozenset) -> list[Vertex]:
    return sorted(bag, key=repr)


def count_homomorphisms_dp(
    pattern: Graph,
    target: Graph,
    allowed: Mapping[Vertex, frozenset] | None = None,
    root: NiceNode | None = None,
) -> int:
    """``|Hom(pattern, target)|`` via tree-decomposition DP.

    ``root`` can supply a pre-computed nice decomposition of ``pattern``
    (useful when counting against many targets, e.g. the WL
    indistinguishability oracle); otherwise an optimal one is computed.
    """
    if pattern.num_vertices() == 0:
        return 1
    if target.num_vertices() == 0:
        return 0
    if root is None:
        decomposition = optimal_tree_decomposition(pattern)
        root = nice_tree_decomposition(decomposition)

    target_vertices = target.vertices()

    def images_for(vertex: Vertex) -> list[Vertex]:
        if allowed is not None and vertex in allowed:
            return [w for w in target_vertices if w in allowed[vertex]]
        return target_vertices

    tables: dict[int, _Table] = {}

    for node in root.iter_postorder():
        if node.kind == "leaf":
            table: _Table = {(): 1}
        elif node.kind == "introduce":
            child = node.children[0]
            child_table = tables.pop(id(child))
            child_order = _bag_order(child.bag)
            order = _bag_order(node.bag)
            vertex = node.vertex
            vertex_position = order.index(vertex)
            neighbour_positions = [
                child_order.index(u)
                for u in pattern.neighbours(vertex)
                if u in child.bag
            ]
            candidate_images = images_for(vertex)
            table = {}
            for key, count in child_table.items():
                for image in candidate_images:
                    if all(
                        target.has_edge(key[pos], image)
                        for pos in neighbour_positions
                    ):
                        new_key = key[:vertex_position] + (image,) + key[vertex_position:]
                        table[new_key] = table.get(new_key, 0) + count
        elif node.kind == "forget":
            child = node.children[0]
            child_table = tables.pop(id(child))
            child_order = _bag_order(child.bag)
            drop = child_order.index(node.vertex)
            table = {}
            for key, count in child_table.items():
                new_key = key[:drop] + key[drop + 1:]
                table[new_key] = table.get(new_key, 0) + count
        elif node.kind == "join":
            left, right = node.children
            left_table = tables.pop(id(left))
            right_table = tables.pop(id(right))
            if len(left_table) > len(right_table):
                left_table, right_table = right_table, left_table
            table = {}
            for key, count in left_table.items():
                other = right_table.get(key)
                if other:
                    table[key] = count * other
        else:  # pragma: no cover - validate_nice rejects unknown kinds
            raise AssertionError(f"unknown node kind {node.kind!r}")
        tables[id(node)] = table

    root_table = tables[id(root)]
    return root_table.get((), 0)


def prepared_pattern(pattern: Graph) -> NiceNode:
    """Pre-compute a nice decomposition for repeated counting calls."""
    return nice_tree_decomposition(optimal_tree_decomposition(pattern))
