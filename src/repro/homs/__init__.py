"""Homomorphism counting: brute force, treewidth DP, coloured, injective."""

from repro.homs.brute_force import (
    count_homomorphisms_brute,
    enumerate_homomorphisms,
    exists_homomorphism,
)
from repro.homs.colored import (
    colour_classes,
    count_cp_hom,
    count_hom_tau,
    enumerate_cp_hom,
    enumerate_hom_tau,
    hom_partition_by_tau,
    is_colouring,
)
from repro.homs.counting import count_homomorphisms, hom_vector
from repro.homs.injective import (
    count_injective_homomorphisms,
    count_injective_homomorphisms_brute,
    count_subgraph_embeddings,
)
from repro.homs.treewidth_dp import count_homomorphisms_dp, prepared_pattern

__all__ = [
    "colour_classes",
    "count_cp_hom",
    "count_hom_tau",
    "count_homomorphisms",
    "count_homomorphisms_brute",
    "count_homomorphisms_dp",
    "count_injective_homomorphisms",
    "count_injective_homomorphisms_brute",
    "count_subgraph_embeddings",
    "enumerate_cp_hom",
    "enumerate_hom_tau",
    "enumerate_homomorphisms",
    "exists_homomorphism",
    "hom_partition_by_tau",
    "hom_vector",
    "is_colouring",
    "prepared_pattern",
]
