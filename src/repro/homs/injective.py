"""Injective homomorphism counting via Möbius inversion.

The classical identity over the partition lattice of ``V(H)``:

``|Inj(H, G)| = Σ_P μ(0̂, P) · |Hom(H/P, G)|``

where ``H/P`` identifies each block of the partition ``P`` and
``μ(0̂, P) = ∏_B (-1)^{|B|-1}(|B|-1)!``.  Quotients that merge two adjacent
vertices would create a self-loop; a simple graph admits no homomorphism
from a looped pattern, so those partitions contribute zero and are skipped.

This is the engine behind the dominating-set corollary (Corollary 68), which
needs injective *answers* to the k-star query — see
:mod:`repro.core.dominating`.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.graphs.operations import quotient
from repro.homs.brute_force import enumerate_homomorphisms
from repro.homs.counting import Method, count_homomorphisms
from repro.utils import partition_moebius, set_partitions


def count_injective_homomorphisms(
    pattern: Graph,
    target: Graph,
    method: Method = "auto",
) -> int:
    """``|Inj(pattern, target)|`` by partition-lattice Möbius inversion."""
    total = 0
    for partition in set_partitions(pattern.vertices()):
        try:
            quotient_graph = quotient(pattern, partition)
        except GraphError:
            # A block contains two adjacent vertices: the quotient would have
            # a self-loop, hence no homomorphisms into a simple graph.
            continue
        total += partition_moebius(partition) * count_homomorphisms(
            quotient_graph, target, method=method,
        )
    return total


def count_injective_homomorphisms_brute(pattern: Graph, target: Graph) -> int:
    """Reference implementation: filter the full enumeration for injectivity."""
    count = 0
    for hom in enumerate_homomorphisms(pattern, target):
        if len(set(hom.values())) == len(hom):
            count += 1
    return count


def count_subgraph_embeddings(pattern: Graph, target: Graph) -> int:
    """Number of subgraphs of ``target`` isomorphic to ``pattern``.

    ``|Sub| = |Inj| / |Aut(pattern)|``.
    """
    from repro.graphs.isomorphism import automorphism_count

    injective = count_injective_homomorphisms(pattern, target)
    automorphisms = automorphism_count(pattern)
    if injective % automorphisms != 0:
        raise AssertionError(
            "injective count must be divisible by the automorphism count",
        )
    return injective // automorphisms
