"""Small shared utilities: exact linear algebra, partitions, multisets,
stable digests.

These helpers are deliberately dependency-light (``fractions`` and
``hashlib`` from the standard library only) because several callers — most
importantly the interpolation argument of Lemma 22 — require *exact*
arithmetic: the linear systems involved are Vandermonde/Hankel systems
whose entries grow quickly, and floating point would silently corrupt
answer counts.
"""

from __future__ import annotations

import hashlib
from fractions import Fraction
from itertools import combinations
from math import factorial
from typing import Iterable, Iterator, Sequence


def stable_key_digest(key) -> str:
    """A process-independent hex digest of a structured cache key.

    Frozensets are serialised in sorted element order, so the digest does
    not depend on hash randomisation; everything else serialises by type
    name + ``repr``.  Shared by the persistent store (on-disk keys must
    survive restarts) and the dynamic layer (version digests feed cache
    keys that may reach the persistent tier).
    """
    return hashlib.sha256(_stable_repr(key).encode("utf-8")).hexdigest()


def _stable_repr(obj) -> str:
    if isinstance(obj, (frozenset, set)):
        return "{" + ",".join(sorted(_stable_repr(x) for x in obj)) + "}"
    if isinstance(obj, tuple):
        return "(" + ",".join(_stable_repr(x) for x in obj) + ")"
    if isinstance(obj, list):
        return "[" + ",".join(_stable_repr(x) for x in obj) + "]"
    if isinstance(obj, dict):
        items = sorted(
            f"{_stable_repr(k)}:{_stable_repr(v)}" for k, v in obj.items()
        )
        return "dict{" + ",".join(items) + "}"
    return f"{type(obj).__name__}:{obj!r}"


def solve_linear_system_exact(
    matrix: Sequence[Sequence[int | Fraction]],
    rhs: Sequence[int | Fraction],
) -> list[Fraction]:
    """Solve ``matrix @ x = rhs`` exactly over the rationals.

    Uses Gaussian elimination with partial (nonzero) pivoting on
    :class:`~fractions.Fraction` values.  Raises :class:`ValueError` if the
    matrix is singular.
    """
    n = len(matrix)
    if any(len(row) != n for row in matrix):
        raise ValueError("matrix must be square")
    if len(rhs) != n:
        raise ValueError("rhs length must match matrix dimension")

    aug = [
        [Fraction(value) for value in row] + [Fraction(rhs[i])]
        for i, row in enumerate(matrix)
    ]
    for col in range(n):
        pivot_row = next(
            (r for r in range(col, n) if aug[r][col] != 0),
            None,
        )
        if pivot_row is None:
            raise ValueError("matrix is singular")
        aug[col], aug[pivot_row] = aug[pivot_row], aug[col]
        pivot = aug[col][col]
        aug[col] = [value / pivot for value in aug[col]]
        for r in range(n):
            if r != col and aug[r][col] != 0:
                factor = aug[r][col]
                aug[r] = [a - factor * b for a, b in zip(aug[r], aug[col])]
    return [aug[i][n] for i in range(n)]


def matrix_rank_exact(matrix: Sequence[Sequence[int | Fraction]]) -> int:
    """Rank of a rational matrix, computed exactly by row reduction."""
    rows = [[Fraction(value) for value in row] for row in matrix]
    if not rows:
        return 0
    num_cols = len(rows[0])
    rank = 0
    pivot_col = 0
    while rank < len(rows) and pivot_col < num_cols:
        pivot_row = next(
            (r for r in range(rank, len(rows)) if rows[r][pivot_col] != 0),
            None,
        )
        if pivot_row is None:
            pivot_col += 1
            continue
        rows[rank], rows[pivot_row] = rows[pivot_row], rows[rank]
        pivot = rows[rank][pivot_col]
        rows[rank] = [value / pivot for value in rows[rank]]
        for r in range(len(rows)):
            if r != rank and rows[r][pivot_col] != 0:
                factor = rows[r][pivot_col]
                rows[r] = [a - factor * b for a, b in zip(rows[r], rows[rank])]
        rank += 1
        pivot_col += 1
    return rank


def vandermonde_solve(points: Sequence[int], values: Sequence[int | Fraction]) -> list[Fraction]:
    """Solve the Vandermonde system ``sum_j c_j * p_i^j = v_i`` exactly.

    ``points`` must be pairwise distinct.  Returns the coefficient vector
    ``c_0, …, c_{n-1}``.
    """
    n = len(points)
    if len(set(points)) != n:
        raise ValueError("interpolation points must be distinct")
    matrix = [[Fraction(p) ** j for j in range(n)] for p in points]
    return solve_linear_system_exact(matrix, list(values))


def set_partitions(items: Sequence) -> Iterator[list[list]]:
    """Yield all set partitions of ``items`` (each partition: list of blocks).

    Uses the standard recursive scheme: the first element starts block 0;
    every later element either joins an existing block or opens a new one.
    The number of partitions is the Bell number of ``len(items)``.
    """
    items = list(items)
    if not items:
        yield []
        return

    def recurse(index: int, blocks: list[list]) -> Iterator[list[list]]:
        if index == len(items):
            yield [list(block) for block in blocks]
            return
        element = items[index]
        for block in blocks:
            block.append(element)
            yield from recurse(index + 1, blocks)
            block.pop()
        blocks.append([element])
        yield from recurse(index + 1, blocks)
        blocks.pop()

    yield from recurse(1, [[items[0]]])


def partition_moebius(partition: Iterable[Sequence]) -> int:
    """Möbius function of the partition lattice at ``(0̂, partition)``.

    ``μ(0̂, P) = ∏_{B ∈ P} (-1)^{|B|-1} (|B|-1)!`` — the classical value used
    to convert homomorphism counts into injective-homomorphism counts.
    """
    result = 1
    for block in partition:
        size = len(block)
        result *= (-1) ** (size - 1) * factorial(size - 1)
    return result


def pairs(items: Sequence) -> Iterator[tuple]:
    """All unordered pairs of distinct elements, in deterministic order."""
    yield from combinations(items, 2)


def multiset_key(values: Iterable) -> tuple:
    """Canonical hashable key for a multiset of hashable values."""
    return tuple(sorted(values))


def powerset(items: Sequence) -> Iterator[tuple]:
    """All subsets of ``items``, smallest first."""
    items = list(items)
    for size in range(len(items) + 1):
        yield from combinations(items, size)


def binomial(n: int, k: int) -> int:
    """Binomial coefficient ``n choose k`` (0 when ``k`` is out of range)."""
    if k < 0 or k > n:
        return 0
    return factorial(n) // (factorial(k) * factorial(n - k))
