"""Command-line interface.

Examples
--------
::

    repro analyze "q(x1, x2) :- E(x1, y), E(x2, y)"
    repro wl-dim  "q(x1, x2, x3) :- E(x1, y), E(x2, y), E(x3, y)"
    repro witness "q(x1, x2) :- E(x1, y), E(x2, y)" --max-multiplicity 2
    repro count   "q(x1, x2) :- E(x1, y), E(x2, y)" --batch 10 --interpolate
    repro engine-stats --targets 16 --n 10
    repro dominating --n 8 --p 0.4 --k 2 --seed 7
"""

from __future__ import annotations

import argparse
import sys

from repro.core.dominating import (
    count_dominating_sets_brute,
    count_dominating_sets_via_stars,
    dominating_set_wl_dimension,
)
from repro.core.wl_dimension import analyse_query, wl_dimension
from repro.core.witnesses import verify_lower_bound
from repro.errors import ReproError
from repro.graphs.generators import random_graph
from repro.queries.parser import format_query, parse_query


def _cmd_analyze(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    print(format_query(query, style="logic"))
    for key, value in analyse_query(query).items():
        print(f"  {key:28s} {value}")
    return 0


def _cmd_wl_dim(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    print(wl_dimension(query))
    return 0


def _cmd_witness(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    report = verify_lower_bound(
        query,
        max_multiplicity=args.max_multiplicity,
        check_wl=not args.skip_wl,
    )
    witness = report.witness
    print(f"query               {format_query(witness.query, style='logic')}")
    print(f"ew = sew            {witness.width}")
    print(f"ell (odd)           {witness.ell}")
    print(f"|V(F)|              {witness.f_graph.num_vertices()}")
    print(f"|V(chi(F, 0))|      {witness.untwisted.num_vertices()}")
    print(f"cpAns (untw, tw)    {report.cp_answers}")
    print(f"Ans_id (untw, tw)   {report.id_answers}")
    print(f"extendable          {report.extendable}")
    print(f"Lemma 50 holds      {report.lemma50_holds}")
    print(f"Lemma 55 holds      {report.lemma55_holds}")
    print(f"(k-1)-WL-equivalent {report.wl_equivalent_below}")
    print(f"k-WL distinguishes  {report.distinguished_at_width}")
    print(f"clone separation    {report.clone_separation}")
    print(f"ALL CHECKS PASS     {report.all_checks_pass}")
    return 0 if report.all_checks_pass else 1


def _cmd_dominating(args: argparse.Namespace) -> int:
    graph = random_graph(args.n, args.p, seed=args.seed)
    brute = count_dominating_sets_brute(graph, args.k)
    via_stars = count_dominating_sets_via_stars(graph, args.k)
    print(f"G(n={args.n}, p={args.p}, seed={args.seed}); k={args.k}")
    print(f"  brute-force count      {brute}")
    print(f"  star-identity count    {via_stars}")
    print(f"  WL-dimension (Cor. 6)  {dominating_set_wl_dimension(args.k)}")
    return 0 if brute == via_stars else 1


def _cmd_count(args: argparse.Namespace) -> int:
    from repro.engine import default_engine
    from repro.graphs.io import from_graph6
    from repro.queries.answers import (
        count_answers,
        count_answers_by_interpolation,
    )

    query = parse_query(args.query)
    if args.graph6:
        hosts = [from_graph6(args.graph6)]
    elif args.batch > 1:
        hosts = [
            random_graph(args.n, args.p, seed=args.seed + i)
            for i in range(args.batch)
        ]
    else:
        hosts = [random_graph(args.n, args.p, seed=args.seed)]

    # Batch mode always exercises the engine-backed hom-count route
    # (Lemma-22 interpolation) so the cache statistics describe real work.
    engine_route = (args.interpolate or len(hosts) > 1) and not query.is_boolean()

    print(f"query  {format_query(query, style='logic')}")
    status = 0
    for host in hosts:
        direct = count_answers(query, host)
        line = f"host {host!r}  |Ans| {direct}"
        if engine_route:
            via_homs = count_answers_by_interpolation(query, host)
            agreement = "ok" if via_homs == direct else "MISMATCH"
            line += f"  via Lemma-22 interpolation {via_homs} [{agreement}]"
            if via_homs != direct:
                status = 1
        print(line)
    if engine_route and len(hosts) > 1:
        stats = default_engine().stats_summary()
        print(
            f"engine: {stats['plans_compiled']} plans compiled, "
            f"{stats['count_hits']}/{stats['count_requests']} count-cache hits",
        )
    return status


def _cmd_engine_stats(args: argparse.Namespace) -> int:
    import time

    from repro.engine import HomEngine
    from repro.wl.hom_indistinguishability import bounded_treewidth_patterns

    patterns = bounded_treewidth_patterns(args.tw, args.max_pattern_vertices)
    targets = [
        random_graph(args.n, args.p, seed=args.seed + i)
        for i in range(args.targets)
    ]
    engine = HomEngine(processes=args.processes)

    start = time.perf_counter()
    engine.count_batch(patterns, targets)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    engine.count_batch(patterns, targets)
    warm = time.perf_counter() - start

    kinds: dict[str, int] = {}
    for pattern in patterns:
        kind = engine.plan_for(pattern).kind
        kinds[kind] = kinds.get(kind, 0) + 1

    print(
        f"workload        {len(patterns)} patterns "
        f"(tw<={args.tw}, <={args.max_pattern_vertices} vertices) x "
        f"{len(targets)} targets G({args.n}, {args.p})",
    )
    print(f"plan kinds      {kinds}")
    print(f"cold batch      {cold * 1000:.1f} ms")
    print(f"warm batch      {warm * 1000:.1f} ms (served from count cache)")
    for key, value in sorted(engine.stats_summary().items()):
        print(f"  {key:18s} {value}")
    return 0


def _cmd_union(args: argparse.Namespace) -> int:
    from repro.core.quantum import union_to_quantum
    from repro.queries.parser import parse_union_query

    queries = parse_union_query(args.query)
    quantum = union_to_quantum(queries)
    print(f"disjuncts        {len(queries)}")
    print(f"quantum terms    {len(quantum.terms)}")
    print(f"hsew = WL-dim    {quantum.wl_dimension()}")
    host = random_graph(args.n, args.p, seed=args.seed)
    print(f"answers on G({args.n}, {args.p}, seed {args.seed}): "
          f"{quantum.count_answers(host)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "The Weisfeiler-Leman dimension of conjunctive queries "
            "(PODS 2024) — analysis tools"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="structural report for a query")
    analyze.add_argument("query", help="datalog or logic style query text")
    analyze.set_defaults(func=_cmd_analyze)

    wl_dim = sub.add_parser("wl-dim", help="print the WL-dimension")
    wl_dim.add_argument("query")
    wl_dim.set_defaults(func=_cmd_wl_dim)

    witness = sub.add_parser(
        "witness", help="build + verify the lower-bound witness",
    )
    witness.add_argument("query")
    witness.add_argument("--max-multiplicity", type=int, default=2)
    witness.add_argument("--skip-wl", action="store_true")
    witness.set_defaults(func=_cmd_witness)

    count = sub.add_parser("count", help="count answers on host graphs")
    count.add_argument("query")
    count.add_argument("--graph6", help="host as a graph6 string")
    count.add_argument("--n", type=int, default=8)
    count.add_argument("--p", type=float, default=0.4)
    count.add_argument("--seed", type=int, default=0)
    count.add_argument(
        "--batch",
        type=int,
        default=1,
        metavar="N",
        help="count on N random hosts (seeds seed..seed+N-1); each count is "
        "cross-checked through the engine-backed Lemma-22 route and cache "
        "statistics are reported",
    )
    count.add_argument(
        "--interpolate",
        action="store_true",
        help="also recover the count from |Hom(F_ell)| (Lemma 22)",
    )
    count.set_defaults(func=_cmd_count)

    engine_stats = sub.add_parser(
        "engine-stats",
        help="run a patterns-x-targets workload and report engine caching",
    )
    engine_stats.add_argument("--tw", type=int, default=2)
    engine_stats.add_argument("--max-pattern-vertices", type=int, default=5)
    engine_stats.add_argument("--targets", type=int, default=8)
    engine_stats.add_argument("--n", type=int, default=10)
    engine_stats.add_argument("--p", type=float, default=0.4)
    engine_stats.add_argument("--seed", type=int, default=0)
    engine_stats.add_argument(
        "--processes", type=int, default=None,
        help="evaluate the batch on a multiprocessing pool",
    )
    engine_stats.set_defaults(func=_cmd_engine_stats)

    union = sub.add_parser(
        "union", help="analyse a union of CQs (disjuncts separated by ';')",
    )
    union.add_argument("query")
    union.add_argument("--n", type=int, default=7)
    union.add_argument("--p", type=float, default=0.4)
    union.add_argument("--seed", type=int, default=0)
    union.set_defaults(func=_cmd_union)

    dominating = sub.add_parser(
        "dominating", help="dominating-set counting demo (Corollary 6)",
    )
    dominating.add_argument("--n", type=int, default=8)
    dominating.add_argument("--p", type=float, default=0.4)
    dominating.add_argument("--k", type=int, default=2)
    dominating.add_argument("--seed", type=int, default=0)
    dominating.set_defaults(func=_cmd_dominating)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
