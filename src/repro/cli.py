"""Command-line interface.

Examples
--------
::

    repro analyze "q(x1, x2) :- E(x1, y), E(x2, y)"
    repro wl-dim  "q(x1, x2, x3) :- E(x1, y), E(x2, y), E(x3, y)"
    repro witness "q(x1, x2) :- E(x1, y), E(x2, y)" --max-multiplicity 2
    repro dominating --n 8 --p 0.4 --k 2 --seed 7
"""

from __future__ import annotations

import argparse
import sys

from repro.core.dominating import (
    count_dominating_sets_brute,
    count_dominating_sets_via_stars,
    dominating_set_wl_dimension,
)
from repro.core.wl_dimension import analyse_query, wl_dimension
from repro.core.witnesses import verify_lower_bound
from repro.errors import ReproError
from repro.graphs.generators import random_graph
from repro.queries.parser import format_query, parse_query


def _cmd_analyze(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    print(format_query(query, style="logic"))
    for key, value in analyse_query(query).items():
        print(f"  {key:28s} {value}")
    return 0


def _cmd_wl_dim(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    print(wl_dimension(query))
    return 0


def _cmd_witness(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    report = verify_lower_bound(
        query,
        max_multiplicity=args.max_multiplicity,
        check_wl=not args.skip_wl,
    )
    witness = report.witness
    print(f"query               {format_query(witness.query, style='logic')}")
    print(f"ew = sew            {witness.width}")
    print(f"ell (odd)           {witness.ell}")
    print(f"|V(F)|              {witness.f_graph.num_vertices()}")
    print(f"|V(chi(F, 0))|      {witness.untwisted.num_vertices()}")
    print(f"cpAns (untw, tw)    {report.cp_answers}")
    print(f"Ans_id (untw, tw)   {report.id_answers}")
    print(f"extendable          {report.extendable}")
    print(f"Lemma 50 holds      {report.lemma50_holds}")
    print(f"Lemma 55 holds      {report.lemma55_holds}")
    print(f"(k-1)-WL-equivalent {report.wl_equivalent_below}")
    print(f"k-WL distinguishes  {report.distinguished_at_width}")
    print(f"clone separation    {report.clone_separation}")
    print(f"ALL CHECKS PASS     {report.all_checks_pass}")
    return 0 if report.all_checks_pass else 1


def _cmd_dominating(args: argparse.Namespace) -> int:
    graph = random_graph(args.n, args.p, seed=args.seed)
    brute = count_dominating_sets_brute(graph, args.k)
    via_stars = count_dominating_sets_via_stars(graph, args.k)
    print(f"G(n={args.n}, p={args.p}, seed={args.seed}); k={args.k}")
    print(f"  brute-force count      {brute}")
    print(f"  star-identity count    {via_stars}")
    print(f"  WL-dimension (Cor. 6)  {dominating_set_wl_dimension(args.k)}")
    return 0 if brute == via_stars else 1


def _cmd_count(args: argparse.Namespace) -> int:
    from repro.graphs.io import from_graph6
    from repro.queries.answers import (
        count_answers,
        count_answers_by_interpolation,
    )

    query = parse_query(args.query)
    if args.graph6:
        host = from_graph6(args.graph6)
    else:
        host = random_graph(args.n, args.p, seed=args.seed)
    direct = count_answers(query, host)
    print(f"query  {format_query(query, style='logic')}")
    print(f"host   {host!r}")
    print(f"|Ans|  {direct}")
    if args.interpolate and not query.is_boolean():
        via_homs = count_answers_by_interpolation(query, host)
        agreement = "ok" if via_homs == direct else "MISMATCH"
        print(f"|Ans| via Lemma-22 interpolation: {via_homs} [{agreement}]")
        return 0 if via_homs == direct else 1
    return 0


def _cmd_union(args: argparse.Namespace) -> int:
    from repro.core.quantum import union_to_quantum
    from repro.queries.parser import parse_union_query

    queries = parse_union_query(args.query)
    quantum = union_to_quantum(queries)
    print(f"disjuncts        {len(queries)}")
    print(f"quantum terms    {len(quantum.terms)}")
    print(f"hsew = WL-dim    {quantum.wl_dimension()}")
    host = random_graph(args.n, args.p, seed=args.seed)
    print(f"answers on G({args.n}, {args.p}, seed {args.seed}): "
          f"{quantum.count_answers(host)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "The Weisfeiler-Leman dimension of conjunctive queries "
            "(PODS 2024) — analysis tools"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="structural report for a query")
    analyze.add_argument("query", help="datalog or logic style query text")
    analyze.set_defaults(func=_cmd_analyze)

    wl_dim = sub.add_parser("wl-dim", help="print the WL-dimension")
    wl_dim.add_argument("query")
    wl_dim.set_defaults(func=_cmd_wl_dim)

    witness = sub.add_parser(
        "witness", help="build + verify the lower-bound witness",
    )
    witness.add_argument("query")
    witness.add_argument("--max-multiplicity", type=int, default=2)
    witness.add_argument("--skip-wl", action="store_true")
    witness.set_defaults(func=_cmd_witness)

    count = sub.add_parser("count", help="count answers on a host graph")
    count.add_argument("query")
    count.add_argument("--graph6", help="host as a graph6 string")
    count.add_argument("--n", type=int, default=8)
    count.add_argument("--p", type=float, default=0.4)
    count.add_argument("--seed", type=int, default=0)
    count.add_argument(
        "--interpolate",
        action="store_true",
        help="also recover the count from |Hom(F_ell)| (Lemma 22)",
    )
    count.set_defaults(func=_cmd_count)

    union = sub.add_parser(
        "union", help="analyse a union of CQs (disjuncts separated by ';')",
    )
    union.add_argument("query")
    union.add_argument("--n", type=int, default=7)
    union.add_argument("--p", type=float, default=0.4)
    union.add_argument("--seed", type=int, default=0)
    union.set_defaults(func=_cmd_union)

    dominating = sub.add_parser(
        "dominating", help="dominating-set counting demo (Corollary 6)",
    )
    dominating.add_argument("--n", type=int, default=8)
    dominating.add_argument("--p", type=float, default=0.4)
    dominating.add_argument("--k", type=int, default=2)
    dominating.add_argument("--seed", type=int, default=0)
    dominating.set_defaults(func=_cmd_dominating)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
