"""Command-line interface.

Examples
--------
::

    repro analyze "q(x1, x2) :- E(x1, y), E(x2, y)" --json
    repro wl-dim  "q(x1, x2, x3) :- E(x1, y), E(x2, y), E(x3, y)"
    repro witness "q(x1, x2) :- E(x1, y), E(x2, y)" --max-multiplicity 2
    repro count   "q(x1, x2) :- E(x1, y), E(x2, y)" --batch 10 --interpolate
    repro engine-stats --targets 16 --n 10 --persistent /tmp/repro-cache
    repro dominating --n 8 --p 0.4 --k 2 --seed 7
    repro serve --port 8765 --data-dir /tmp/repro-cache
    repro client --port 8765 count-answers "q(x1, x2) :- E(x1, y), E(x2, y)" --target hosts
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.core.dominating import (
    count_dominating_sets_brute,
    count_dominating_sets_via_stars,
    dominating_set_wl_dimension,
)
from repro.core.wl_dimension import analyse_query, wl_dimension
from repro.core.witnesses import verify_lower_bound
from repro.errors import ReproError
from repro.graphs.generators import random_graph
from repro.queries.parser import format_query, parse_query


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.json:
        from repro.service.wire import analyze_payload

        print(json.dumps(analyze_payload(args.query), indent=2))
        return 0
    query = parse_query(args.query)
    print(format_query(query, style="logic"))
    for key, value in analyse_query(query).items():
        print(f"  {key:28s} {value}")
    return 0


def _cmd_wl_dim(args: argparse.Namespace) -> int:
    if args.json:
        from repro.service.wire import wl_dim_payload

        print(json.dumps(wl_dim_payload(args.query), indent=2))
        return 0
    query = parse_query(args.query)
    print(wl_dimension(query))
    return 0


def _cmd_witness(args: argparse.Namespace) -> int:
    query = parse_query(args.query)
    report = verify_lower_bound(
        query,
        max_multiplicity=args.max_multiplicity,
        check_wl=not args.skip_wl,
    )
    witness = report.witness
    print(f"query               {format_query(witness.query, style='logic')}")
    print(f"ew = sew            {witness.width}")
    print(f"ell (odd)           {witness.ell}")
    print(f"|V(F)|              {witness.f_graph.num_vertices()}")
    print(f"|V(chi(F, 0))|      {witness.untwisted.num_vertices()}")
    print(f"cpAns (untw, tw)    {report.cp_answers}")
    print(f"Ans_id (untw, tw)   {report.id_answers}")
    print(f"extendable          {report.extendable}")
    print(f"Lemma 50 holds      {report.lemma50_holds}")
    print(f"Lemma 55 holds      {report.lemma55_holds}")
    print(f"(k-1)-WL-equivalent {report.wl_equivalent_below}")
    print(f"k-WL distinguishes  {report.distinguished_at_width}")
    print(f"clone separation    {report.clone_separation}")
    print(f"ALL CHECKS PASS     {report.all_checks_pass}")
    return 0 if report.all_checks_pass else 1


def _cmd_dominating(args: argparse.Namespace) -> int:
    graph = random_graph(args.n, args.p, seed=args.seed)
    brute = count_dominating_sets_brute(graph, args.k)
    via_stars = count_dominating_sets_via_stars(graph, args.k)
    print(f"G(n={args.n}, p={args.p}, seed={args.seed}); k={args.k}")
    print(f"  brute-force count      {brute}")
    print(f"  star-identity count    {via_stars}")
    print(f"  WL-dimension (Cor. 6)  {dominating_set_wl_dimension(args.k)}")
    return 0 if brute == via_stars else 1


def _cmd_count(args: argparse.Namespace) -> int:
    from repro.engine import default_engine
    from repro.graphs.io import from_graph6
    from repro.queries.answers import (
        count_answers,
        count_answers_by_interpolation,
    )

    query = parse_query(args.query)
    if args.graph6:
        hosts = [from_graph6(args.graph6)]
    elif args.batch > 1:
        hosts = [
            random_graph(args.n, args.p, seed=args.seed + i)
            for i in range(args.batch)
        ]
    else:
        hosts = [random_graph(args.n, args.p, seed=args.seed)]

    if args.json:
        from repro.engine import default_engine
        from repro.service.wire import count_answers_payload

        # One host emits exactly the payload shape `POST /count-answers`
        # returns; a batch wraps those payloads with the engine report.
        results = [count_answers_payload(args.query, host) for host in hosts]
        if len(results) == 1:
            print(json.dumps(results[0], indent=2))
        else:
            print(json.dumps(
                {
                    "kind": "count-answers-batch",
                    "query": args.query,
                    "results": results,
                    "engine": default_engine().stats_summary(),
                },
                indent=2,
            ))
        return 0

    # Batch mode always exercises the engine-backed hom-count route
    # (Lemma-22 interpolation) so the cache statistics describe real work.
    engine_route = (args.interpolate or len(hosts) > 1) and not query.is_boolean()

    print(f"query  {format_query(query, style='logic')}")
    status = 0
    for host in hosts:
        direct = count_answers(query, host)
        line = f"host {host!r}  |Ans| {direct}"
        if engine_route:
            via_homs = count_answers_by_interpolation(query, host)
            agreement = "ok" if via_homs == direct else "MISMATCH"
            line += f"  via Lemma-22 interpolation {via_homs} [{agreement}]"
            if via_homs != direct:
                status = 1
        print(line)
    if engine_route and len(hosts) > 1:
        stats = default_engine().stats_summary()
        print(
            f"engine: {stats['plans_compiled']} plans compiled, "
            f"{stats['count_hits']}/{stats['count_requests']} count-cache hits",
        )
    return status


def _run_dynamic_workload(engine, args) -> dict:
    """The ``engine-stats`` dynamic segment: maintain the workload's
    low-treewidth patterns over a mutating copy of one target and report
    the shared version/delta statistics payload."""
    import random as random_module

    from repro.dynamic import DynamicGraph, MaintainedCount
    from repro.service.wire import dynamic_stats_payload
    from repro.wl.hom_indistinguishability import bounded_treewidth_patterns

    rng = random_module.Random(args.seed)
    dynamic = DynamicGraph(random_graph(args.n, args.p, seed=args.seed))
    patterns = bounded_treewidth_patterns(args.tw, args.max_pattern_vertices)
    handles = [
        MaintainedCount(pattern, dynamic, engine=engine)
        for pattern in patterns
    ]
    vertices = list(dynamic.graph.vertices())
    for _ in range(args.dynamic_batches):
        graph = dynamic.graph
        add_edges, remove_edges = [], []
        seen = set()
        for _ in range(3):
            u, v = rng.sample(vertices, 2)
            key = frozenset((u, v))
            if key in seen:
                continue
            seen.add(key)
            (remove_edges if graph.has_edge(u, v) else add_edges).append((u, v))
        dynamic.apply(add_edges=add_edges, remove_edges=remove_edges)
    dynamic.rollback()
    payload = dynamic_stats_payload(dynamic.stats)
    payload["version"] = dynamic.version
    payload["maintained_counts"] = len(handles)
    return payload


def _cmd_engine_stats(args: argparse.Namespace) -> int:
    from repro.engine import HomEngine
    from repro.obs import registry as metrics_registry, span
    from repro.wl.hom_indistinguishability import bounded_treewidth_patterns

    patterns = bounded_treewidth_patterns(args.tw, args.max_pattern_vertices)
    targets = [
        random_graph(args.n, args.p, seed=args.seed + i)
        for i in range(args.targets)
    ]
    store = None
    if args.persistent:
        from repro.service.store import PersistentStore

        store = PersistentStore(args.persistent)
    engine = HomEngine(processes=args.processes, store=store)

    cold_span = span("cli.engine-stats.cold-batch")
    with cold_span:
        engine.count_batch(patterns, targets, pool=args.pool)
    warm_span = span("cli.engine-stats.warm-batch")
    with warm_span:
        engine.count_batch(patterns, targets, pool=args.pool)
    cold_ms, warm_ms = cold_span.duration_ms, warm_span.duration_ms

    kinds: dict[str, int] = {}
    for pattern in patterns:
        kind = engine.plan_for(pattern).kind
        kinds[kind] = kinds.get(kind, 0) + 1

    dynamic_payload = None
    if args.dynamic_batches > 0:
        dynamic_payload = _run_dynamic_workload(engine, args)

    backends_payload = None
    if args.backends:
        from repro import kernel

        backends_payload = kernel.kernel_report()

    if args.json:
        print(json.dumps(
            {
                "kind": "engine-stats",
                "patterns": len(patterns),
                "targets": len(targets),
                "plan_kinds": kinds,
                "cold_ms": round(cold_ms, 3),
                "warm_ms": round(warm_ms, 3),
                "engine": engine.stats_summary(),
                "dynamic": dynamic_payload,
                "backends": backends_payload,
                # Additive: the process metrics snapshot alongside the
                # CacheStats block; pre-existing fields are unchanged.
                "metrics": metrics_registry().snapshot(),
            },
            indent=2,
        ))
        return 0

    print(
        f"workload        {len(patterns)} patterns "
        f"(tw<={args.tw}, <={args.max_pattern_vertices} vertices) x "
        f"{len(targets)} targets G({args.n}, {args.p})",
    )
    print(f"plan kinds      {kinds}")
    print(f"cold batch      {cold_ms:.1f} ms")
    print(f"warm batch      {warm_ms:.1f} ms (served from count cache)")
    for key, value in sorted(engine.stats_summary().items()):
        print(f"  {key:24s} {value}")
    if store is not None:
        print("persistent tier")
        for key, value in sorted(store.summary().items()):
            print(f"  {key:24s} {value}")
    if dynamic_payload is not None:
        print(
            f"dynamic workload ({args.dynamic_batches} batches + rollback, "
            f"{dynamic_payload['maintained_counts']} maintained counts)",
        )
        for key, value in sorted(dynamic_payload.items()):
            if key != "kind":
                print(f"  {key:24s} {value}")
    if backends_payload is not None:
        numpy_line = (
            f"numpy {backends_payload['numpy_version']}"
            if backends_payload["numpy_available"]
            else "numpy unavailable (pure-Python tier only)"
        )
        if backends_payload["forced"]:
            numpy_line += f", forced={backends_payload['forced']}"
        print(f"kernel backends  {numpy_line}")
        print(f"  thresholds      {backends_payload['thresholds']}")
        selected = backends_payload["selected"] or {}
        for key in sorted(selected):
            print(f"  selected        {key:18s} {selected[key]}")
        fallbacks = backends_payload["fallbacks"] or {}
        for key in sorted(fallbacks):
            print(f"  fallback        {key:18s} {fallbacks[key]}")
        if not fallbacks:
            print("  fallback        (none)")
    return 0


def _make_generator_graph(args: argparse.Namespace):
    from repro.graphs import complete_graph, cycle_graph, grid_graph, path_graph

    if args.generator == "random":
        return random_graph(args.n, args.p, seed=args.seed)
    if args.generator == "cycle":
        return cycle_graph(args.n)
    if args.generator == "path":
        return path_graph(args.n)
    if args.generator == "complete":
        return complete_graph(args.n)
    if args.generator == "grid":
        side = max(2, int(round(args.n ** 0.5)))
        return grid_graph(side, side)
    raise AssertionError(f"unknown generator {args.generator!r}")


def _cmd_encode_stats(args: argparse.Namespace) -> int:
    from repro.graphs.indexed import IndexedGraph, graph_memory_footprint
    from repro.obs import span

    graph = _make_generator_graph(args)
    if args.rich_labels:
        graph = graph.relabelled(
            {
                v: (("w", v), frozenset({hash(v) % 5, "tag"}))
                for v in graph.vertices()
            },
        )

    encode_span = span("cli.encode-stats.encode")
    with encode_span:
        indexed = IndexedGraph.from_graph(graph)
    invariants_span = span("cli.encode-stats.invariants")
    with invariants_span:
        indexed.bitsets()
        indexed.degree_sequence()
        indexed.connected_components()

    graph_bytes = graph_memory_footprint(graph)
    indexed_bytes = indexed.memory_footprint()
    payload = {
        "kind": "encode-stats",
        "generator": args.generator,
        "vertices": graph.num_vertices(),
        "edges": graph.num_edges(),
        "rich_labels": bool(args.rich_labels),
        "encode_ms": round(encode_span.duration_ms, 3),
        "invariants_ms": round(invariants_span.duration_ms, 3),
        "graph_bytes": graph_bytes,
        "indexed_bytes": indexed_bytes,
        "bytes_ratio": round(indexed_bytes / graph_bytes, 3) if graph_bytes else None,
        "structural_digest": indexed.structural_digest(),
    }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"{args.generator} graph: n={payload['vertices']} m={payload['edges']}"
        f"{' (rich labels)' if args.rich_labels else ''}",
    )
    print(f"  encode (CSR + codec)     {payload['encode_ms']:.3f} ms")
    print(f"  invariants (bitsets &c)  {payload['invariants_ms']:.3f} ms")
    print(f"  Graph adjacency bytes    {graph_bytes}")
    print(f"  IndexedGraph bytes       {indexed_bytes}")
    print(f"  indexed / dict-of-sets   {payload['bytes_ratio']}")
    print(f"  structural digest        {payload['structural_digest'][:16]}…")
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    """``repro stats``: the observability snapshot — the local process
    metrics registry, or (with ``--port``) a running service's."""
    from repro.obs import registry as metrics_registry

    if args.port is not None:
        from repro.service.client import ServiceClient

        client = ServiceClient(host=args.host, port=args.port)
        if args.metrics:
            text = client.metrics_text()
            if text:
                print(text, end="" if text.endswith("\n") else "\n")
            return 0
        print(json.dumps(
            {"kind": "metrics", "metrics": client.metrics()}, indent=2,
        ))
        return 0
    if args.metrics:
        text = metrics_registry().render_prometheus()
        if text:
            print(text, end="" if text.endswith("\n") else "\n")
        return 0
    print(json.dumps(
        {"kind": "metrics", "metrics": metrics_registry().snapshot()}, indent=2,
    ))
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """``repro trace``: run one task with tracing on and print its span
    tree (the ``Result.explain()`` rendering, or the wire payload)."""
    from repro.api import (
        AnswerCountTask,
        HomCountTask,
        Session,
        WlDimensionTask,
    )
    from repro.graphs.io import from_graph6
    from repro.obs import set_tracing

    if args.pattern_graph6:
        pattern = from_graph6(args.pattern_graph6)
        target = (
            from_graph6(args.graph6) if args.graph6
            else random_graph(args.n, args.p, seed=args.seed)
        )
        task = HomCountTask(pattern, target)
    elif args.query is not None:
        if args.wl_dim:
            task = WlDimensionTask(args.query)
        else:
            target = (
                from_graph6(args.graph6) if args.graph6
                else random_graph(args.n, args.p, seed=args.seed)
            )
            task = AnswerCountTask(args.query, target)
    else:
        raise ReproError("pass a query, or --pattern-graph6 for a hom count")

    previous = set_tracing(True)
    try:
        session = Session()
        for _ in range(max(1, args.repeat)):
            result = session.run(task)
    finally:
        set_tracing(previous)
    if args.json:
        from repro.service.wire import result_to_wire

        print(json.dumps(result_to_wire(result), indent=2))
        return 0
    print(result.explain())
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    """``repro profile``: sample this process while an inner repro
    command runs, or inspect/control a running service's profiler."""
    from repro.obs import profile_snapshot, start_profiling, stop_profiling

    if args.port is not None:
        from repro.service.client import ServiceClient

        client = ServiceClient(host=args.host, port=args.port)
        if args.start:
            payload = client.profile_start(
                interval_ms=args.interval_ms, keep_idle=args.keep_idle,
            )
            print(json.dumps(payload, indent=2))
            return 0
        if args.stop:
            snapshot = client.profile_stop()
        elif args.collapsed:
            text = client.profile_collapsed()
            print(text, end="" if text.endswith("\n") or not text else "\n")
            return 0
        else:
            snapshot = client.profile()
        _print_profile(snapshot, args)
        return 0
    if not args.cmd:
        raise ReproError(
            "pass a repro command to profile (e.g. `repro profile -- trace "
            "'q(x) :- E(x, y)'`), or --port to talk to a running service",
        )
    inner = list(args.cmd)
    if inner and inner[0] == "--":
        inner = inner[1:]
    if not inner:
        raise ReproError("nothing to profile after '--'")
    if inner[0] in ("profile",):
        raise ReproError("refusing to profile `repro profile` recursively")
    start_profiling(interval_ms=args.interval_ms, keep_idle=args.keep_idle)
    try:
        exit_code = main(inner)
    finally:
        snapshot = stop_profiling()
    _print_profile(snapshot, args)
    return exit_code


def _print_profile(snapshot: dict, args: argparse.Namespace) -> None:
    if args.json:
        print(json.dumps({"kind": "profile", "profile": snapshot}, indent=2))
        return
    if args.collapsed:
        from repro.obs import render_collapsed

        text = render_collapsed()
        if text:
            print(text, end="")
        return
    print(
        f"profile: {snapshot['samples']} samples over "
        f"{snapshot['elapsed_s']}s (interval {snapshot['interval_ms']} ms, "
        f"{snapshot['idle_skipped']} idle skipped)",
    )
    spans = snapshot.get("spans", {})
    if spans:
        print("samples by span:")
        width = max(len(name) for name in spans)
        for name, count in sorted(
            spans.items(), key=lambda item: (-item[1], item[0]),
        ):
            print(f"  {name:<{width}}  {count}")
    top = snapshot.get("stacks", [])[: args.top]
    if top:
        print(f"heaviest stacks (top {len(top)}):")
        for stack in top:
            label = stack["span"] if stack["span"] is not None else "-"
            print(f"  {stack['samples']:>6}  [{label}]")
            for frame in stack["frames"][-args.depth:]:
                print(f"          {frame}")


def _cmd_slowlog(args: argparse.Namespace) -> int:
    """``repro slowlog``: the slow-query log — local process, or a
    running service's with ``--port``."""
    if args.port is not None:
        from repro.service.client import ServiceClient

        client = ServiceClient(host=args.host, port=args.port)
        payload = client.slow_queries(
            limit=args.limit, threshold_ms=args.threshold_ms,
        )
    else:
        from repro.obs import (
            set_slowlog_threshold_ms,
            slow_queries,
            slowlog_threshold_ms,
        )

        if args.threshold_ms is not None:
            set_slowlog_threshold_ms(args.threshold_ms)
        payload = {
            "kind": "slow-queries",
            "threshold_ms": slowlog_threshold_ms(),
            "slow_queries": slow_queries(args.limit),
        }
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    entries = payload["slow_queries"]
    print(
        f"slow-query log: {len(entries)} entries "
        f"(threshold {payload['threshold_ms']} ms)",
    )
    for entry in entries:
        trace_id = entry.get("trace_id") or "-"
        print(
            f"  #{entry['seq']}  {entry['elapsed_ms']:.3f} ms  "
            f"{entry['kind']}  [{entry['executor']}]  trace {trace_id}",
        )
        cost = entry.get("cost")
        if cost:
            print(
                f"      compile {cost['compile_ms']:.3f}  "
                f"execute {cost['execute_ms']:.3f}  "
                f"encode {cost['encode_ms']:.3f}  "
                f"lookup {cost['lookup_ms']:.3f} ms",
            )
        if args.explain:
            for line in entry.get("explain", "").splitlines():
                print(f"      {line}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import run_server

    return run_server(
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        workers=args.workers,
        max_queue=args.queue,
    )


def _cmd_cluster(args: argparse.Namespace) -> int:
    """``repro cluster``: the multi-process topology — a consistent-hash
    router fronting N supervised worker processes, same wire protocol as
    ``repro serve`` (every existing client and subcommand points at the
    router's port unchanged)."""
    from repro.cluster import run_cluster

    return run_cluster(
        host=args.host,
        port=args.port,
        workers=args.workers,
        data_dir=args.data_dir,
        scheduler_workers=args.scheduler_workers,
        max_queue=args.queue,
    )


def _client_target(args: argparse.Namespace):
    from repro.service.client import ServiceError

    if args.target:
        return args.target
    if args.graph6:
        return {"graph6": args.graph6}
    raise ServiceError("pass --target NAME or --graph6 GRAPH6 for the target")


def _cmd_client(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient(host=args.host, port=args.port)
    action = args.action
    if action == "stats":
        payload = client.stats()
    elif action == "health":
        payload = client.health()
    elif action == "wl-dim":
        payload = client.wl_dim(args.query)
    elif action == "analyze":
        payload = client.analyze(args.query)
    elif action == "register":
        from repro.graphs.io import from_graph6

        if args.graph6:
            graph = from_graph6(args.graph6)
        else:
            graph = random_graph(args.n, args.p, seed=args.seed)
        payload = client.register_graph(args.name, graph, shards=args.shards)
    elif action == "count":
        from repro.graphs.io import from_graph6

        pattern = from_graph6(args.pattern_graph6)
        payload = client.count(pattern, _client_target(args))
    elif action == "count-answers":
        payload = client.count_answers(args.query, _client_target(args))
    else:  # pragma: no cover - argparse restricts the choices
        raise AssertionError(f"unknown client action {action!r}")
    print(json.dumps(payload, indent=2))
    return 0


def _coerce_vertex(token: str):
    """CLI vertex names: integers when they parse (graph6 datasets use
    0..n-1), strings otherwise."""
    try:
        return int(token)
    except ValueError:
        return token


def _split_pair(option: str, value: str) -> list:
    parts = [part.strip() for part in value.split(",")]
    if len(parts) != 2 or not all(parts):
        raise ReproError(f"--{option} expects 'u,v', got {value!r}")
    return [_coerce_vertex(part) for part in parts]


def _split_triple(option: str, value: str) -> list:
    parts = [part.strip() for part in value.split(",")]
    if len(parts) != 3 or not all(parts):
        raise ReproError(f"--{option} expects 'source,label,target', got {value!r}")
    return [_coerce_vertex(parts[0]), parts[1], _coerce_vertex(parts[2])]


def _cmd_update(args: argparse.Namespace) -> int:
    """``repro update``: advance a registered dataset on a running
    service; ``--json`` emits the exact ``POST /target-update`` payload."""
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(host=args.host, port=args.port)
    add_edges = [_split_pair("add-edge", v) for v in args.add_edge]
    remove_edges = [_split_pair("remove-edge", v) for v in args.remove_edge]
    add_triples = [_split_triple("add-triple", v) for v in args.add_triple]
    remove_triples = [
        _split_triple("remove-triple", v) for v in args.remove_triple
    ]
    add_vertices = [_coerce_vertex(v) for v in args.add_vertex]
    remove_vertices = [_coerce_vertex(v) for v in args.remove_vertex]
    if not any((add_edges, remove_edges, add_vertices, remove_vertices,
                add_triples, remove_triples)):
        raise ServiceError(
            "pass at least one --add-edge/--remove-edge/--add-vertex/"
            "--remove-vertex (graphs) or --add-triple/--remove-triple (KGs)",
        )
    payload = client.target_update(
        args.target,
        add_edges=add_edges,
        remove_edges=remove_edges,
        add_vertices=add_vertices,
        remove_vertices=remove_vertices,
        add_triples=add_triples,
        remove_triples=remove_triples,
    )
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    applied = payload["applied"]
    print(f"dataset {payload['target']} -> version {payload['version']} "
          f"({'patched' if payload['patched'] else 'recompiled'})")
    print("  applied      " + ", ".join(f"{k}={v}" for k, v in applied.items()))
    dynamic = payload["dynamic"]
    print(f"  patch ratio  {dynamic['patch_ratio']} "
          f"({dynamic['index_patches']} patches / "
          f"{dynamic['index_recompiles']} recompiles)")
    print(f"  delta ratio  {dynamic['delta_ratio']} "
          f"({dynamic['deltas_applied']} deltas / "
          f"{dynamic['delta_fallbacks']} fallback recomputes)")
    for subscription in payload["subscriptions"]:
        print(f"  {subscription['id']:16s} {subscription['maintains']:14s} "
              f"value {subscription['value']}")
    return 0


def _cmd_watch(args: argparse.Namespace) -> int:
    """``repro watch``: poll the service's maintained subscriptions and
    print values as versions advance."""
    import time

    from repro.service.client import ServiceClient

    client = ServiceClient(host=args.host, port=args.port)
    previous: dict[str, tuple] = {}
    ticks = 0
    while True:
        payloads = client.subscriptions()
        if args.target:
            payloads = [p for p in payloads if p["target"] == args.target]
        if args.json:
            print(json.dumps(
                {"kind": "watch", "tick": ticks, "subscriptions": payloads},
            ))
        else:
            for payload in payloads:
                key = payload["id"]
                state = (payload["version"], payload["value"])
                if previous.get(key) != state:
                    marker = "*" if key in previous else "+"
                    print(f"{marker} {payload['target']}/{key} "
                          f"[{payload['maintains']}] version {state[0]} "
                          f"value {state[1]}")
                    previous[key] = state
        ticks += 1
        if args.count and ticks >= args.count:
            return 0
        time.sleep(args.interval)


def _cmd_health(args: argparse.Namespace) -> int:
    """``repro health``: liveness/readiness of a running service.

    ``--wait TIMEOUT`` polls ``/readyz`` until the service is ready —
    the scripted replacement for sleep/retry startup loops.  Exit code 0
    when healthy/ready, 1 when not (so shell gates compose:
    ``repro health --wait 30 --port 8765 && run-load-test``).
    """
    from repro.service.client import ServiceClient, ServiceError

    client = ServiceClient(host=args.host, port=args.port)
    if args.wait is not None:
        try:
            payload = client.wait_ready(timeout=args.wait)
        except ServiceError as error:
            if args.json:
                print(json.dumps(
                    {"kind": "readyz", "ready": False, "error": str(error)},
                ))
            else:
                print(f"not ready: {error}", file=sys.stderr)
            return 1
        if args.json:
            print(json.dumps(payload, indent=2))
        else:
            print(f"ready ({payload.get('datasets', 0)} dataset(s) registered)")
        return 0
    status, payload = client.readyz() if args.ready else client.healthz()
    if args.json:
        print(json.dumps(payload, indent=2))
    else:
        print(f"{payload.get('status', '?')} (HTTP {status})")
        for name, probe in sorted(payload.get("probes", {}).items()):
            line = f"  {probe.get('status', '?'):<9} {name}"
            if probe.get("reason"):
                line += f" — {probe['reason']}"
            print(line)
    return 0 if status == 200 else 1


_TOP_COLOURS = {
    "ok": "\x1b[32m", "degraded": "\x1b[33m", "failing": "\x1b[31m",
}
_TOP_RESET = "\x1b[0m"


def _top_snapshot(client) -> dict:
    """One combined dashboard tick over the monitoring routes."""
    status, health = client.healthz()
    return {
        "kind": "top",
        "healthz_status": status,
        "health": health,
        "stats": client.stats(),
        "slo": client.slo(),
        "alerts": client.alerts(),
    }


def _render_top(
    snap: dict,
    previous: dict | None,
    interval: float,
    host: str,
    port: int,
    plain: bool,
) -> str:
    """The ``repro top`` frame: header, scheduler, requests (+rates),
    SLOs, alerts, probes — every lookup defensive so a partial payload
    renders instead of crashing the dashboard."""

    def paint(status: str, text: str | None = None) -> str:
        text = status if text is None else text
        colour = _TOP_COLOURS.get(status)
        if plain or colour is None:
            return text
        return f"{colour}{text}{_TOP_RESET}"

    health = snap.get("health", {})
    stats = snap.get("stats", {})
    slo = snap.get("slo", {})
    alerts = snap.get("alerts", {})
    probes = health.get("probes", {})
    firing = alerts.get("firing", [])
    status = health.get("status", "?")
    lines = [
        f"repro top — {host}:{port} — health {paint(status)} — "
        + paint(
            "failing" if firing else "ok",
            f"{len(firing)} alert(s) firing",
        ),
        "",
    ]

    sched = stats.get("scheduler", {})
    workers = probes.get("scheduler-workers", {}).get("data", {})
    queue = probes.get("scheduler-queue", {}).get("data", {})
    lines.append(
        "scheduler   "
        f"workers {workers.get('alive', '?')}/{workers.get('configured', '?')}"
        f"  restarts {sched.get('worker_restarts', 0)}"
        f"  executed {sched.get('executed', 0)}"
        f"  failed {sched.get('failed', 0)}"
        f"  coalesce {sched.get('coalesce_rate', 0.0):.0%}"
        f"  queue {queue.get('saturation', 0.0):.0%} of "
        f"{queue.get('max_queue', '?')}",
    )

    engine = stats.get("engine", {})
    if engine:
        interesting = [
            (key, engine[key])
            for key in sorted(engine)
            if isinstance(engine[key], (int, float)) and engine[key]
        ][:6]
        if interesting:
            lines.append(
                "engine      "
                + "  ".join(f"{key} {value}" for key, value in interesting),
            )

    cluster = stats.get("cluster", {})
    if cluster:
        router = cluster.get("router", {})
        lines.append("")
        lines.append(
            "cluster     "
            f"workers {router.get('admitted', '?')}"
            f"  log {router.get('log_entries', 0)}"
            f"  datasets {len(router.get('datasets', {}))}",
        )
        lines.append(
            "worker     port    reachable   requests  executed  coalesced",
        )
        for worker in cluster.get("workers", []):
            reachable = bool(worker.get("reachable"))
            # Pad before painting: ANSI codes would defeat the format
            # width, shifting every later column.
            verdict = paint(
                "ok" if reachable else "failing",
                f"{'yes' if reachable else 'DOWN':<11}",
            )
            lines.append(
                f"{worker.get('id', '?'):<10} {worker.get('port') or '?':<7}"
                f" {verdict}"
                f" {worker.get('requests', 0):>8}"
                f"  {worker.get('executed', 0):>8}"
                f"  {worker.get('coalesced', 0):>9}",
            )

    requests = stats.get("requests", {})
    if requests:
        prev_requests = (previous or {}).get("stats", {}).get("requests", {})
        lines.append("")
        lines.append("route                 total      rate")
        for route in sorted(requests):
            total = requests[route]
            if previous is not None and interval > 0:
                rate = (total - prev_requests.get(route, 0)) / interval
                rate_text = f"{rate:8.1f}/s"
            else:
                rate_text = "        --"
            lines.append(f"{route:<20} {total:>6} {rate_text}")

    objectives = slo.get("objectives", [])
    if objectives:
        lines.append("")
        lines.append("slo objective                     attained    burn   ok")
        for obj in objectives:
            attained = obj.get("attained_ms")
            if attained is None and obj.get("kind") == "error-rate":
                attained = f"{obj.get('error_rate', 0.0):.2%}"
            elif attained is None:
                attained = "--"
            elif attained == float("inf"):
                attained = ">buckets"
            else:
                attained = f"{attained:g}ms"
            verdict = paint("ok" if obj.get("ok") else "failing",
                            "yes" if obj.get("ok") else "NO")
            lines.append(
                f"{obj.get('objective', '?'):<32} {attained:>9}"
                f"  {obj.get('burn_rate', 0.0):6.2f}   {verdict}",
            )

    if firing:
        lines.append("")
        lines.append("alerts firing:")
        by_name = {a.get("name"): a for a in alerts.get("alerts", [])}
        for name in firing:
            alert = by_name.get(name, {})
            lines.append(
                "  " + paint("failing", name)
                + f" [{alert.get('severity', '?')}] {alert.get('reason', '')}",
            )

    lines.append("")
    lines.append("probes: " + "  ".join(
        f"{name}={paint(probe.get('status', '?'))}"
        for name, probe in sorted(probes.items())
    ))
    return "\n".join(lines)


def _cmd_top(args: argparse.Namespace) -> int:
    """``repro top``: a refresh-loop terminal dashboard over a running
    service's ``/stats`` + ``/healthz`` + ``/slo`` + ``/alerts``."""
    import time

    from repro.service.client import ServiceClient

    client = ServiceClient(host=args.host, port=args.port)
    if args.json:
        print(json.dumps(_top_snapshot(client), indent=2))
        return 0
    previous: dict | None = None
    ticks = 0
    try:
        while True:
            snap = _top_snapshot(client)
            frame = _render_top(
                snap, previous, args.interval, args.host, args.port,
                plain=args.plain,
            )
            if not args.plain:
                sys.stdout.write("\x1b[2J\x1b[H")  # clear screen, home
            print(frame)
            sys.stdout.flush()
            previous = snap
            ticks += 1
            if args.count and ticks >= args.count:
                return 0
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0


def _cmd_union(args: argparse.Namespace) -> int:
    from repro.core.quantum import union_to_quantum
    from repro.queries.parser import parse_union_query

    queries = parse_union_query(args.query)
    quantum = union_to_quantum(queries)
    print(f"disjuncts        {len(queries)}")
    print(f"quantum terms    {len(quantum.terms)}")
    print(f"hsew = WL-dim    {quantum.wl_dimension()}")
    host = random_graph(args.n, args.p, seed=args.seed)
    print(f"answers on G({args.n}, {args.p}, seed {args.seed}): "
          f"{quantum.count_answers(host)}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    from repro import __version__

    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "The Weisfeiler-Leman dimension of conjunctive queries "
            "(PODS 2024) — analysis tools"
        ),
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {__version__}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    json_help = "emit the machine-readable payload the service API returns"

    analyze = sub.add_parser("analyze", help="structural report for a query")
    analyze.add_argument("query", help="datalog or logic style query text")
    analyze.add_argument("--json", action="store_true", help=json_help)
    analyze.set_defaults(func=_cmd_analyze)

    wl_dim = sub.add_parser("wl-dim", help="print the WL-dimension")
    wl_dim.add_argument("query")
    wl_dim.add_argument("--json", action="store_true", help=json_help)
    wl_dim.set_defaults(func=_cmd_wl_dim)

    witness = sub.add_parser(
        "witness", help="build + verify the lower-bound witness",
    )
    witness.add_argument("query")
    witness.add_argument("--max-multiplicity", type=int, default=2)
    witness.add_argument("--skip-wl", action="store_true")
    witness.set_defaults(func=_cmd_witness)

    count = sub.add_parser("count", help="count answers on host graphs")
    count.add_argument("query")
    count.add_argument("--graph6", help="host as a graph6 string")
    count.add_argument("--n", type=int, default=8)
    count.add_argument("--p", type=float, default=0.4)
    count.add_argument("--seed", type=int, default=0)
    count.add_argument(
        "--batch",
        type=int,
        default=1,
        metavar="N",
        help="count on N random hosts (seeds seed..seed+N-1); each count is "
        "cross-checked through the engine-backed Lemma-22 route and cache "
        "statistics are reported",
    )
    count.add_argument(
        "--interpolate",
        action="store_true",
        help="also recover the count from |Hom(F_ell)| (Lemma 22)",
    )
    count.add_argument("--json", action="store_true", help=json_help)
    count.set_defaults(func=_cmd_count)

    engine_stats = sub.add_parser(
        "engine-stats",
        help="run a patterns-x-targets workload and report engine caching",
    )
    engine_stats.add_argument("--tw", type=int, default=2)
    engine_stats.add_argument("--max-pattern-vertices", type=int, default=5)
    engine_stats.add_argument("--targets", type=int, default=8)
    engine_stats.add_argument("--n", type=int, default=10)
    engine_stats.add_argument("--p", type=float, default=0.4)
    engine_stats.add_argument("--seed", type=int, default=0)
    engine_stats.add_argument(
        "--processes", type=int, default=None,
        help="evaluate the batch on a worker pool of this size",
    )
    engine_stats.add_argument(
        "--pool", choices=("process", "thread"), default=None,
        help="worker-pool flavour (default: automatic — threads when the "
        "numpy kernel tier carries the counting)",
    )
    engine_stats.add_argument(
        "--backends", action="store_true",
        help="report kernel backend availability, per-layer selection "
        "counts, and overflow fallbacks",
    )
    engine_stats.add_argument(
        "--persistent", metavar="DIR", default=None,
        help="back the engine with an on-disk cache tier at DIR and "
        "report it (run twice to see a warm restart)",
    )
    engine_stats.add_argument(
        "--dynamic-batches", type=int, default=4, metavar="N",
        help="also run N update batches (+ one rollback) with maintained "
        "counts and report version/delta statistics (0 disables)",
    )
    engine_stats.add_argument("--json", action="store_true", help=json_help)
    engine_stats.set_defaults(func=_cmd_engine_stats)

    encode_stats = sub.add_parser(
        "encode-stats",
        help="report IndexedGraph encode time + memory vs the dict-of-sets Graph",
    )
    encode_stats.add_argument(
        "--generator",
        choices=("random", "cycle", "path", "grid", "complete"),
        default="random",
    )
    encode_stats.add_argument("--n", type=int, default=200)
    encode_stats.add_argument("--p", type=float, default=0.1)
    encode_stats.add_argument("--seed", type=int, default=0)
    encode_stats.add_argument(
        "--rich-labels",
        action="store_true",
        help="relabel vertices with CFI-style structured labels first",
    )
    encode_stats.add_argument("--json", action="store_true", help=json_help)
    encode_stats.set_defaults(func=_cmd_encode_stats)

    stats = sub.add_parser(
        "stats",
        help="print the observability metrics snapshot (local process, or "
        "a running service with --port)",
    )
    stats.add_argument(
        "--metrics", action="store_true",
        help="emit the Prometheus text exposition instead of JSON",
    )
    stats.add_argument("--host", default="127.0.0.1")
    stats.add_argument(
        "--port", type=int, default=None,
        help="scrape a running service's GET /metrics instead of this process",
    )
    stats.set_defaults(func=_cmd_stats)

    trace = sub.add_parser(
        "trace",
        help="run one task with tracing enabled and print its span tree",
    )
    trace.add_argument(
        "query", nargs="?", default=None,
        help="query text (answer count; --wl-dim analyses it instead)",
    )
    trace.add_argument(
        "--pattern-graph6", default=None,
        help="trace a hom count of this graph6 pattern instead of a query",
    )
    trace.add_argument("--graph6", help="target as a graph6 string")
    trace.add_argument("--n", type=int, default=10)
    trace.add_argument("--p", type=float, default=0.4)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument(
        "--wl-dim", action="store_true",
        help="trace the WL-dimension analysis of the query",
    )
    trace.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="run the task N times and print the last trace (N=2 shows "
        "the warm-cache path)",
    )
    trace.add_argument("--json", action="store_true", help=json_help)
    trace.set_defaults(func=_cmd_trace)

    profile = sub.add_parser(
        "profile",
        help="sample-profile an inner repro command (span-attributed, "
        "flame-graph output), or a running service with --port",
    )
    profile.add_argument(
        "--interval-ms", type=float, default=5.0,
        help="sampling interval in milliseconds",
    )
    profile.add_argument(
        "--keep-idle", action="store_true",
        help="keep samples of threads parked in blocking calls",
    )
    profile.add_argument(
        "--collapsed", action="store_true",
        help="emit collapsed-stack text (flamegraph.pl / speedscope input)",
    )
    profile.add_argument(
        "--top", type=int, default=5,
        help="heaviest stacks to show in the summary",
    )
    profile.add_argument(
        "--depth", type=int, default=6,
        help="innermost frames to show per stack in the summary",
    )
    profile.add_argument("--host", default="127.0.0.1")
    profile.add_argument(
        "--port", type=int, default=None,
        help="talk to a running service's profiler instead of sampling "
        "this process",
    )
    profile.add_argument(
        "--start", action="store_true",
        help="with --port: start the service's profiler",
    )
    profile.add_argument(
        "--stop", action="store_true",
        help="with --port: stop the service's profiler and print the profile",
    )
    profile.add_argument("--json", action="store_true", help=json_help)
    profile.add_argument(
        "cmd", nargs=argparse.REMAINDER,
        help="repro command to run under the profiler (prefix with --)",
    )
    profile.set_defaults(func=_cmd_profile)

    slowlog = sub.add_parser(
        "slowlog",
        help="print the slow-query log (local process, or a running "
        "service with --port)",
    )
    slowlog.add_argument("--limit", type=int, default=20)
    slowlog.add_argument(
        "--threshold-ms", type=float, default=None,
        help="retune the capture threshold before reading",
    )
    slowlog.add_argument(
        "--explain", action="store_true",
        help="print each entry's full explain output",
    )
    slowlog.add_argument("--host", default="127.0.0.1")
    slowlog.add_argument("--port", type=int, default=None)
    slowlog.add_argument("--json", action="store_true", help=json_help)
    slowlog.set_defaults(func=_cmd_slowlog)

    health = sub.add_parser(
        "health",
        help="check a running service's health/readiness (exit 0 healthy, "
        "1 not); --wait polls /readyz until ready",
    )
    health.add_argument("--host", default="127.0.0.1")
    health.add_argument("--port", type=int, default=8765)
    health.add_argument(
        "--wait", type=float, default=None, metavar="TIMEOUT",
        help="poll /readyz for up to TIMEOUT seconds (startup gate)",
    )
    health.add_argument(
        "--ready", action="store_true",
        help="query /readyz instead of /healthz",
    )
    health.add_argument("--json", action="store_true", help=json_help)
    health.set_defaults(func=_cmd_health)

    top = sub.add_parser(
        "top",
        help="live terminal dashboard over a running service "
        "(/stats + /healthz + /slo + /alerts)",
    )
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=8765)
    top.add_argument(
        "--interval", type=float, default=2.0,
        help="seconds between refreshes",
    )
    top.add_argument(
        "--count", type=int, default=0, metavar="N",
        help="render N frames then exit (0 = run until interrupted)",
    )
    top.add_argument(
        "--plain", action="store_true",
        help="no ANSI colours or screen clearing (dumb terminals, logs)",
    )
    top.add_argument(
        "--json", action="store_true",
        help="print one combined JSON snapshot and exit",
    )
    top.set_defaults(func=_cmd_top)

    serve = sub.add_parser(
        "serve", help="run the counting service (HTTP/JSON, stdlib only)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765)
    serve.add_argument(
        "--data-dir", default=None,
        help="directory for the persistent plan/count cache tier",
    )
    serve.add_argument("--workers", type=int, default=4)
    serve.add_argument(
        "--queue", type=int, default=256,
        help="bounded request queue size (backpressure beyond it)",
    )
    serve.set_defaults(func=_cmd_serve)

    cluster = sub.add_parser(
        "cluster",
        help="run the sharded topology: a consistent-hash router over N "
        "supervised worker processes (same wire protocol as serve)",
    )
    cluster.add_argument("--host", default="127.0.0.1")
    cluster.add_argument("--port", type=int, default=8765)
    cluster.add_argument(
        "--workers", type=int, default=2,
        help="worker processes behind the router",
    )
    cluster.add_argument(
        "--data-dir", default=None,
        help="shared persistent cache directory (all workers warm it)",
    )
    cluster.add_argument(
        "--scheduler-workers", type=int, default=4,
        help="scheduler worker tasks inside each worker process",
    )
    cluster.add_argument(
        "--queue", type=int, default=256,
        help="bounded request queue size inside each worker",
    )
    cluster.set_defaults(func=_cmd_cluster)

    client = sub.add_parser(
        "client", help="query a running counting service",
    )
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=8765)
    client_sub = client.add_subparsers(dest="action", required=True)
    client_sub.add_parser("stats")
    client_sub.add_parser("health")
    for name in ("wl-dim", "analyze"):
        action = client_sub.add_parser(name)
        action.add_argument("query")
    register = client_sub.add_parser("register")
    register.add_argument("--name", required=True)
    register.add_argument("--graph6", help="dataset as a graph6 string")
    register.add_argument("--n", type=int, default=12)
    register.add_argument("--p", type=float, default=0.3)
    register.add_argument("--seed", type=int, default=0)
    register.add_argument("--shards", type=int, default=1)
    client_count = client_sub.add_parser("count")
    client_count.add_argument("--pattern-graph6", required=True)
    client_count.add_argument("--target", help="registered dataset name")
    client_count.add_argument("--graph6", help="inline target as graph6")
    client_answers = client_sub.add_parser("count-answers")
    client_answers.add_argument("query")
    client_answers.add_argument("--target", help="registered dataset name")
    client_answers.add_argument("--graph6", help="inline target as graph6")
    client.set_defaults(func=_cmd_client)

    update = sub.add_parser(
        "update",
        help="apply an update batch to a registered dataset on a running "
        "service (advances its version, refreshes maintained counts)",
    )
    update.add_argument("--host", default="127.0.0.1")
    update.add_argument("--port", type=int, default=8765)
    update.add_argument("--target", required=True, help="registered dataset name")
    update.add_argument(
        "--add-edge", action="append", default=[], metavar="U,V",
    )
    update.add_argument(
        "--remove-edge", action="append", default=[], metavar="U,V",
    )
    update.add_argument(
        "--add-vertex", action="append", default=[], metavar="V",
    )
    update.add_argument(
        "--remove-vertex", action="append", default=[], metavar="V",
    )
    update.add_argument(
        "--add-triple", action="append", default=[], metavar="S,L,T",
        help="KG datasets: add the triple (source, label, target)",
    )
    update.add_argument(
        "--remove-triple", action="append", default=[], metavar="S,L,T",
    )
    update.add_argument("--json", action="store_true", help=json_help)
    update.set_defaults(func=_cmd_update)

    watch = sub.add_parser(
        "watch",
        help="poll a running service's maintained subscriptions and print "
        "values as target versions advance",
    )
    watch.add_argument("--host", default="127.0.0.1")
    watch.add_argument("--port", type=int, default=8765)
    watch.add_argument("--target", default=None, help="filter to one dataset")
    watch.add_argument("--interval", type=float, default=2.0)
    watch.add_argument(
        "--count", type=int, default=0, metavar="N",
        help="stop after N polls (0 = run until interrupted)",
    )
    watch.add_argument("--json", action="store_true", help=json_help)
    watch.set_defaults(func=_cmd_watch)

    union = sub.add_parser(
        "union", help="analyse a union of CQs (disjuncts separated by ';')",
    )
    union.add_argument("query")
    union.add_argument("--n", type=int, default=7)
    union.add_argument("--p", type=float, default=0.4)
    union.add_argument("--seed", type=int, default=0)
    union.set_defaults(func=_cmd_union)

    dominating = sub.add_parser(
        "dominating", help="dominating-set counting demo (Corollary 6)",
    )
    dominating.add_argument("--n", type=int, default=8)
    dominating.add_argument("--p", type=float, default=0.4)
    dominating.add_argument("--k", type=int, default=2)
    dominating.add_argument("--seed", type=int, default=0)
    dominating.set_defaults(func=_cmd_dominating)

    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
