"""Order-k GNN simulation and expressiveness analysis."""

from repro.gnn.expressiveness import (
    InexpressivenessCertificate,
    demonstrate_inexpressiveness,
    gnn_can_count_answers,
    minimum_gnn_order,
)
from repro.gnn.model import OrderKGNN

__all__ = [
    "InexpressivenessCertificate",
    "OrderKGNN",
    "demonstrate_inexpressiveness",
    "gnn_can_count_answers",
    "minimum_gnn_order",
]
