"""Order-k GNN simulation and expressiveness analysis."""

from repro.gnn.expressiveness import (
    InexpressivenessCertificate,
    demonstrate_inexpressiveness,
    gnn_can_count_answers,
    hom_feature_map,
    hom_features_indistinguishable,
    minimum_gnn_order,
)
from repro.gnn.model import OrderKGNN

__all__ = [
    "InexpressivenessCertificate",
    "OrderKGNN",
    "demonstrate_inexpressiveness",
    "gnn_can_count_answers",
    "hom_feature_map",
    "hom_features_indistinguishable",
    "minimum_gnn_order",
]
