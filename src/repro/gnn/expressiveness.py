"""GNN expressiveness for counting conjunctive query answers (Section 1.2).

The paper's GNN corollary: a fully refined order-k GNN can compute
``G ↦ |Ans((H,X), G)|`` (as a polynomial-time function of its partition)
iff ``k ≥ sew(H, X)``.

* Sufficiency: Observation 23 — the answer count is a rational linear
  combination of homomorphism counts from graphs of treewidth ≤ sew, and
  those are computable from the order-sew partition (Lanzinger–Barceló).
* Necessity: the Section 4 witness pair is (sew−1)-WL-equivalent, hence
  indistinguishable to every order-(sew−1) GNN (Proposition 3), yet has
  different answer counts.

``demonstrate_inexpressiveness`` produces the concrete counterexample.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.witnesses import (
    build_lower_bound_witness,
    search_clone_separation,
    cloned_pair,
)
from repro.core.wl_dimension import wl_dimension
from repro.engine.engine import HomEngine, default_engine
from repro.errors import WitnessError
from repro.gnn.model import OrderKGNN
from repro.graphs.graph import Graph
from repro.queries.query import ConjunctiveQuery
from repro.wl.hom_indistinguishability import bounded_treewidth_patterns


def hom_feature_map(
    graph: Graph,
    order: int,
    max_pattern_vertices: int = 4,
    engine: HomEngine | None = None,
) -> tuple[int, ...]:
    """The hom-count features available to a fully refined order-``order``
    GNN: counts from (connected) patterns of treewidth ≤ ``order``
    (Lanzinger–Barceló), truncated at ``max_pattern_vertices``.

    Evaluated through the engine, so the pattern family is compiled once
    however many graphs are featurised.
    """
    engine = engine or default_engine()
    patterns = bounded_treewidth_patterns(order, max_pattern_vertices)
    return engine.hom_vector(patterns, graph)


def hom_features_indistinguishable(
    first: Graph,
    second: Graph,
    order: int,
    max_pattern_vertices: int = 4,
    engine: HomEngine | None = None,
) -> bool:
    """Do the two graphs share every order-``order`` hom-count feature?

    A single two-target engine batch over the bounded pattern family;
    equality here is the feature-level face of Proposition 3's claim that
    order-``order`` GNNs cannot separate the pair.
    """
    engine = engine or default_engine()
    patterns = bounded_treewidth_patterns(order, max_pattern_vertices)
    rows = engine.count_batch(patterns, [first, second])
    return all(row[0] == row[1] for row in rows)


def minimum_gnn_order(query: ConjunctiveQuery) -> int:
    """The smallest GNN order able to count the query's answers = the
    WL-dimension = ``sew`` (Theorem 1 + Proposition 3)."""
    return wl_dimension(query)


def gnn_can_count_answers(query: ConjunctiveQuery, order: int) -> bool:
    """Can a fully refined order-``order`` GNN compute ``|Ans|``?"""
    return order >= minimum_gnn_order(query)


@dataclass(frozen=True)
class InexpressivenessCertificate:
    """A pair of graphs no order-``order`` GNN separates, with different
    answer counts for the query — proof the GNN cannot compute ``|Ans|``."""

    query: ConjunctiveQuery
    order: int
    first: Graph
    second: Graph
    count_first: int
    count_second: int
    gnn_indistinguishable: bool
    # Engine-verified agreement on all order-level hom-count features
    # (None when the cross-check was not requested).
    hom_features_agree: bool | None = None

    @property
    def is_valid(self) -> bool:
        return (
            self.gnn_indistinguishable and self.count_first != self.count_second
        )


def demonstrate_inexpressiveness(
    query: ConjunctiveQuery,
    order: int | None = None,
    max_multiplicity: int = 2,
    check_gnn: bool = True,
    check_hom_features: bool = False,
) -> InexpressivenessCertificate:
    """Build the counterexample for GNNs of order ``sew − 1`` (default).

    Uses the lower-bound witness and the clone search; the GNN
    indistinguishability check simulates the order-``order`` GNN directly
    (feasible for order ≤ 2 on the witness sizes; pass ``check_gnn=False``
    to skip it and rely on Lemma 35's guarantee).
    ``check_hom_features=True`` additionally verifies, via an engine batch,
    that the pair agrees on every order-level hom-count feature.
    """
    dimension = wl_dimension(query)
    if order is None:
        order = dimension - 1
    if order >= dimension:
        raise WitnessError(
            f"order {order} >= WL-dimension {dimension}: such GNNs *can* "
            "count the answers; no counterexample exists",
        )
    if order < 1:
        raise WitnessError("GNN order must be >= 1")

    witness = build_lower_bound_witness(query)
    separation = search_clone_separation(witness, max_multiplicity)
    if separation is None:
        raise WitnessError(
            "no clone vector within budget separates the pair; increase "
            "max_multiplicity",
        )
    multiplicities, count_first, count_second = separation
    first, second, _, _ = cloned_pair(witness, multiplicities)

    if check_gnn:
        gnn = OrderKGNN(order)
        indistinguishable = not gnn.distinguishes(first, second)
    else:
        indistinguishable = True  # guaranteed by Lemma 35 for order < sew

    features_agree = (
        hom_features_indistinguishable(first, second, order)
        if check_hom_features
        else None
    )

    return InexpressivenessCertificate(
        query=witness.query,
        order=order,
        first=first,
        second=second,
        count_first=count_first,
        count_second=count_second,
        gnn_indistinguishable=indistinguishable,
        hom_features_agree=features_agree,
    )
