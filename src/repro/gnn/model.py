"""Order-k GNN simulation (Section 1.2, Proposition 3).

Morris et al. (AAAI 2019) showed that *fully refined* order-k GNNs induce
exactly the partition of k-tuples that the k-WL algorithm computes.  The
paper's GNN results (what such networks can and cannot count) therefore
depend only on that partition — not on weights, activation functions, or
feature dimensionality.  :class:`OrderKGNN` simulates a fully refined
order-k GNN by computing the stable k-WL partition, layer by layer, with
integer "feature" identifiers standing in for injectively hashed feature
vectors.
"""

from __future__ import annotations

from itertools import product

from repro.graphs.graph import Graph
from repro.wl.kwl import atomic_type
from repro.wl.refinement import ColourInterner


class OrderKGNN:
    """A fully refined order-k GNN, simulated at the partition level.

    Parameters
    ----------
    order:
        ``k`` — features live on k-tuples of vertices (order 1 is a
        message-passing GNN, matching colour refinement).
    num_layers:
        Upper bound on refinement layers; ``None`` runs to stability
        ("fully refined").
    """

    def __init__(self, order: int, num_layers: int | None = None) -> None:
        if order < 1:
            raise ValueError("GNN order must be a positive integer")
        self.order = order
        self.num_layers = num_layers

    # ------------------------------------------------------------------
    def initial_features(self, graph: Graph, interner: ColourInterner) -> dict:
        """Layer-0 features ``f₀``: the atomic type of each tuple (for
        order 1: a constant — degree information arrives via message
        passing)."""
        if self.order == 1:
            return {
                (v,): interner.intern("node") for v in graph.vertices()
            }
        return {
            t: interner.intern(("atomic", atomic_type(graph, t)))
            for t in product(graph.vertices(), repeat=self.order)
        }

    def _layer(
        self,
        graph: Graph,
        features: dict,
        interner: ColourInterner,
    ) -> dict:
        """One message-passing layer (the aggregate/update of an order-k
        GNN, collapsed to its induced partition)."""
        vertices = graph.vertices()
        if self.order == 1:
            return {
                (v,): interner.intern(
                    (
                        features[(v,)],
                        tuple(sorted(features[(u,)] for u in graph.neighbours(v))),
                    ),
                )
                for v in vertices
            }
        updated = {}
        for t in features:
            messages = sorted(
                tuple(
                    features[t[:i] + (w,) + t[i + 1:]] for i in range(self.order)
                )
                for w in vertices
            )
            updated[t] = interner.intern((features[t], tuple(messages)))
        return updated

    def run(
        self,
        graph: Graph,
        interner: ColourInterner | None = None,
    ) -> dict:
        """The (stable, unless ``num_layers`` caps it) feature map
        ``f_t : V^k → feature ids`` — i.e. the partition ``P_N(G)``."""
        if interner is None:
            interner = ColourInterner()
        features = self.initial_features(graph, interner)
        max_layers = (
            self.num_layers
            if self.num_layers is not None
            else max(len(features), 1)
        )
        for _ in range(max_layers):
            num_classes = len(set(features.values()))
            features = self._layer(graph, features, interner)
            if len(set(features.values())) == num_classes:
                break
        return features

    # ------------------------------------------------------------------
    def readout_histogram(self, graph: Graph, interner: ColourInterner | None = None) -> dict:
        """The permutation-invariant readout: the multiset of tuple
        features.  Any graph-level function an order-k GNN computes factors
        through this histogram."""
        features = self.run(graph, interner)
        histogram: dict[int, int] = {}
        for feature in features.values():
            histogram[feature] = histogram.get(feature, 0) + 1
        return histogram

    def distinguishes(self, first: Graph, second: Graph) -> bool:
        """Can *any* order-k GNN tell the graphs apart?  Equivalent to
        k-WL-distinguishability (Proposition 3).

        The two graphs are refined in lockstep with a shared palette so the
        feature identifiers stay comparable at every layer.
        """

        def histogram(features: dict) -> dict:
            result: dict[int, int] = {}
            for feature in features.values():
                result[feature] = result.get(feature, 0) + 1
            return result

        if first.num_vertices() != second.num_vertices():
            return True
        interner = ColourInterner()
        features_a = self.initial_features(first, interner)
        features_b = self.initial_features(second, interner)
        if histogram(features_a) != histogram(features_b):
            return True
        max_layers = (
            self.num_layers
            if self.num_layers is not None
            else max(len(features_a), 1)
        )
        for _ in range(max_layers):
            num_classes = len(
                set(features_a.values()) | set(features_b.values()),
            )
            features_a = self._layer(first, features_a, interner)
            features_b = self._layer(second, features_b, interner)
            if histogram(features_a) != histogram(features_b):
                return True
            if len(set(features_a.values()) | set(features_b.values())) == num_classes:
                break
        return False
