"""repro — reproduction of "The Weisfeiler-Leman Dimension of Conjunctive
Queries" (Göbel, Goldberg, Roth; PODS 2024).

Public API highlights
---------------------
``ConjunctiveQuery``, ``parse_query``
    build queries from graphs or text.
``wl_dimension(query)``
    the main theorem: WL-dimension = semantic extension width.
``count_answers(query, graph)``
    answer counting (brute force, projection, or Lemma-22 interpolation).
``cfi_pair`` / ``build_lower_bound_witness`` / ``verify_lower_bound``
    the Section-4 lower-bound machinery, executable.
``QuantumQuery`` / ``count_dominating_sets_via_stars``
    Section-5 consequences.
``OrderKGNN`` / ``minimum_gnn_order``
    the GNN expressiveness corollary.
``HomEngine`` / ``default_engine``
    the batched, cached, multi-backend homomorphism-count engine behind
    ``count_homomorphisms(method='auto')``.
``DynamicGraph`` / ``MaintainedCount`` / ``MaintainedAnswerCount``
    incremental maintenance of homomorphism and answer counts over
    mutating targets (versioned updates, delta counting, rollback).
``Session`` / ``HomCountTask`` / ``AnswerCountTask`` / …
    the one-API layer: typed, immutable task specs that run unchanged on
    the in-process engine (``LocalExecutor``), the counting service
    (``ServiceExecutor``), or live maintained handles
    (``DynamicExecutor``), all returning a uniform ``Result``.
"""

from repro.api import (
    AnalyzeTask,
    AnswerCountTask,
    DynamicExecutor,
    HomCountTask,
    KgAnswerCountTask,
    LocalExecutor,
    Result,
    ServiceExecutor,
    Session,
    Task,
    TaskBatch,
    WlDimensionTask,
    default_session,
)
from repro.cfi import cfi_graph, cfi_pair, clone_colour_blocks
from repro.core import (
    QuantumQuery,
    analyse_query,
    build_lower_bound_witness,
    count_dominating_sets_brute,
    count_dominating_sets_via_stars,
    dominating_set_wl_dimension,
    injective_answers_quantum,
    union_to_quantum,
    verify_lower_bound,
    wl_dimension,
    wl_dimension_upper_bound,
)
from repro.dynamic import (
    DynamicGraph,
    DynamicKnowledgeGraph,
    MaintainedAnswerCount,
    MaintainedCount,
    UpdateBatch,
)
from repro.engine import HomEngine, default_engine
from repro.gnn import OrderKGNN, gnn_can_count_answers, minimum_gnn_order
from repro.graphs import Graph
from repro.homs import count_homomorphisms
from repro.queries import (
    ConjunctiveQuery,
    count_answers,
    count_answers_by_interpolation,
    extension_width,
    parse_query,
    semantic_extension_width,
    star_query,
)
from repro.treewidth import treewidth
from repro.wl import k_wl_equivalent, wl_1_equivalent

__version__ = "1.0.0"

__all__ = [
    "AnalyzeTask",
    "AnswerCountTask",
    "ConjunctiveQuery",
    "DynamicExecutor",
    "DynamicGraph",
    "DynamicKnowledgeGraph",
    "Graph",
    "HomCountTask",
    "HomEngine",
    "KgAnswerCountTask",
    "LocalExecutor",
    "MaintainedAnswerCount",
    "MaintainedCount",
    "Result",
    "ServiceExecutor",
    "Session",
    "Task",
    "TaskBatch",
    "UpdateBatch",
    "WlDimensionTask",
    "default_session",
    "OrderKGNN",
    "QuantumQuery",
    "analyse_query",
    "build_lower_bound_witness",
    "cfi_graph",
    "cfi_pair",
    "clone_colour_blocks",
    "count_answers",
    "count_answers_by_interpolation",
    "count_dominating_sets_brute",
    "count_dominating_sets_via_stars",
    "count_homomorphisms",
    "default_engine",
    "dominating_set_wl_dimension",
    "extension_width",
    "gnn_can_count_answers",
    "injective_answers_quantum",
    "k_wl_equivalent",
    "minimum_gnn_order",
    "parse_query",
    "semantic_extension_width",
    "star_query",
    "treewidth",
    "union_to_quantum",
    "verify_lower_bound",
    "wl_1_equivalent",
    "wl_dimension",
    "wl_dimension_upper_bound",
    "__version__",
]
