"""Equitable partitions and fractional isomorphism (characterisation (I)).

Tinhofer's theorem: ``G ≅₁ G'`` iff ``G`` and ``G'`` are *fractionally
isomorphic* — there is a doubly stochastic matrix ``S`` with
``A_G S = S A_{G'}``.  Equivalently, the two graphs have a *common
equitable partition*: partitions ``{P_i}``, ``{Q_i}`` with ``|P_i| = |Q_i|``
such that vertices in ``P_i`` and ``Q_i`` have the same number of
neighbours in ``P_j`` / ``Q_j`` for every ``j``.

This module computes coarsest equitable partitions, their quotient
parameter matrices, the combinatorial common-partition test, and — when
numpy/scipy are available — the LP certificate (an explicit doubly
stochastic ``S``).  It is both a second, independent decision procedure for
1-WL-equivalence (cross-checked against colour refinement in tests and
experiment A3) and the executable form of the paper's characterisation (I).
"""

from __future__ import annotations

from repro.graphs.graph import Graph, Vertex
from repro.wl.refinement import ColourInterner


def coarsest_equitable_partition(graph: Graph) -> list[frozenset]:
    """The coarsest equitable partition of ``graph``.

    A partition is *equitable* when every vertex of a class has the same
    number of neighbours in each class.  The coarsest one is the stable
    partition of colour refinement; this implementation refines with
    explicit per-class neighbour counts (not just multisets) so the
    quotient parameters fall out directly.
    """
    classes: dict[Vertex, int] = {v: 0 for v in graph.vertices()}
    for _ in range(max(graph.num_vertices(), 1)):
        signatures: dict[Vertex, tuple] = {}
        for v in graph.vertices():
            counts: dict[int, int] = {}
            for u in graph.neighbours(v):
                counts[classes[u]] = counts.get(classes[u], 0) + 1
            signatures[v] = (classes[v], tuple(sorted(counts.items())))
        order = sorted(set(signatures.values()))
        renaming = {signature: index for index, signature in enumerate(order)}
        updated = {v: renaming[signatures[v]] for v in graph.vertices()}
        if len(set(updated.values())) == len(set(classes.values())):
            classes = updated
            break
        classes = updated

    blocks: dict[int, set[Vertex]] = {}
    for v, index in classes.items():
        blocks.setdefault(index, set()).add(v)
    return [frozenset(blocks[index]) for index in sorted(blocks)]


def is_equitable(graph: Graph, partition: list[frozenset]) -> bool:
    """Check the equitability condition directly."""
    index_of: dict[Vertex, int] = {}
    for index, block in enumerate(partition):
        for v in block:
            index_of[v] = index
    if set(index_of) != set(graph.vertices()):
        return False
    for block in partition:
        reference: dict[int, int] | None = None
        for v in block:
            counts: dict[int, int] = {}
            for u in graph.neighbours(v):
                counts[index_of[u]] = counts.get(index_of[u], 0) + 1
            if reference is None:
                reference = counts
            elif counts != reference:
                return False
    return True


def partition_parameters(
    graph: Graph,
    partition: list[frozenset],
) -> tuple[tuple[int, ...], tuple[tuple[int, ...], ...]]:
    """``(sizes, D)`` with ``D[i][j]`` = neighbours in block j of any vertex
    of block i — the quotient parameters of an equitable partition."""
    index_of: dict[Vertex, int] = {}
    for index, block in enumerate(partition):
        for v in block:
            index_of[v] = index
    sizes = tuple(len(block) for block in partition)
    degree_matrix = []
    for block in partition:
        representative = next(iter(block))
        counts = [0] * len(partition)
        for u in graph.neighbours(representative):
            counts[index_of[u]] += 1
        degree_matrix.append(tuple(counts))
    return sizes, tuple(degree_matrix)


def _joint_equitable_parameters(
    first: Graph,
    second: Graph,
) -> tuple[tuple, tuple] | None:
    """Run the refinement jointly (shared class names) and return the two
    parameter tuples, or ``None`` when the class histograms diverge."""
    interner = ColourInterner()
    classes_a = {v: interner.intern("init") for v in first.vertices()}
    classes_b = {v: interner.intern("init") for v in second.vertices()}

    def refine(graph: Graph, classes: dict[Vertex, int]) -> dict[Vertex, int]:
        updated = {}
        for v in graph.vertices():
            counts: dict[int, int] = {}
            for u in graph.neighbours(v):
                counts[classes[u]] = counts.get(classes[u], 0) + 1
            updated[v] = interner.intern(
                (classes[v], tuple(sorted(counts.items()))),
            )
        return updated

    def histogram(classes: dict[Vertex, int]) -> dict[int, int]:
        result: dict[int, int] = {}
        for value in classes.values():
            result[value] = result.get(value, 0) + 1
        return result

    for _ in range(max(first.num_vertices(), 1)):
        num_classes = len(set(classes_a.values()) | set(classes_b.values()))
        classes_a = refine(first, classes_a)
        classes_b = refine(second, classes_b)
        if histogram(classes_a) != histogram(classes_b):
            return None
        if len(set(classes_a.values()) | set(classes_b.values())) == num_classes:
            break

    def parameters(graph: Graph, classes: dict[Vertex, int]) -> tuple:
        blocks: dict[int, list[Vertex]] = {}
        for v, value in classes.items():
            blocks.setdefault(value, []).append(v)
        rows = []
        for value in sorted(blocks):
            representative = blocks[value][0]
            counts: dict[int, int] = {}
            for u in graph.neighbours(representative):
                counts[classes[u]] = counts.get(classes[u], 0) + 1
            rows.append(
                (value, len(blocks[value]), tuple(sorted(counts.items()))),
            )
        return tuple(rows)

    return parameters(first, classes_a), parameters(second, classes_b)


def have_common_equitable_partition(first: Graph, second: Graph) -> bool:
    """The combinatorial fractional-isomorphism test: jointly refined
    coarsest equitable partitions with identical parameters."""
    if first.num_vertices() != second.num_vertices():
        return False
    if first.num_edges() != second.num_edges():
        return False
    joint = _joint_equitable_parameters(first, second)
    if joint is None:
        return False
    return joint[0] == joint[1]


def fractionally_isomorphic(first: Graph, second: Graph) -> bool:
    """Characterisation (I): ``G ≅₁ G'`` iff fractionally isomorphic.

    Decided via common equitable partitions (Tinhofer); see
    :func:`doubly_stochastic_witness` for the explicit LP certificate.
    """
    return have_common_equitable_partition(first, second)


def doubly_stochastic_witness(first: Graph, second: Graph):
    """An explicit doubly stochastic ``S`` with ``A S = S B``, or ``None``.

    Solves the feasibility LP with scipy.  Requires numpy/scipy; raises
    :class:`ImportError` otherwise (the combinatorial test above is the
    dependency-free path).
    """
    import numpy
    from scipy.optimize import linprog

    n = first.num_vertices()
    if n != second.num_vertices():
        return None
    indexed_a, _ = first.to_index_graph()
    indexed_b, _ = second.to_index_graph()
    adjacency_a = numpy.zeros((n, n))
    adjacency_b = numpy.zeros((n, n))
    for u, v in indexed_a.edges():
        adjacency_a[u][v] = adjacency_a[v][u] = 1.0
    for u, v in indexed_b.edges():
        adjacency_b[u][v] = adjacency_b[v][u] = 1.0

    # Unknowns: S as a flattened n² vector, S >= 0.
    num_vars = n * n
    rows = []
    rhs = []

    def add_constraint(coefficients: numpy.ndarray, value: float) -> None:
        rows.append(coefficients.reshape(num_vars))
        rhs.append(value)

    # Row sums and column sums equal one.
    for i in range(n):
        row = numpy.zeros((n, n))
        row[i, :] = 1.0
        add_constraint(row, 1.0)
        column = numpy.zeros((n, n))
        column[:, i] = 1.0
        add_constraint(column, 1.0)
    # A S − S B = 0, entrywise.
    for i in range(n):
        for j in range(n):
            coefficient = numpy.zeros((n, n))
            for k in range(n):
                coefficient[k, j] += adjacency_a[i, k]
                coefficient[i, k] -= adjacency_b[k, j]
            add_constraint(coefficient, 0.0)

    result = linprog(
        c=numpy.zeros(num_vars),
        A_eq=numpy.array(rows),
        b_eq=numpy.array(rhs),
        bounds=[(0, None)] * num_vars,
        method="highs",
    )
    if not result.success:
        return None
    return result.x.reshape((n, n))
