"""1-dimensional Weisfeiler-Leman: colour refinement.

The k = 1 case of the WL hierarchy (and of Definition 19, via homomorphism
counts from forests).  Colours are interned into a palette shared across
graphs so stable colourings of two graphs are directly comparable: two
graphs are 1-WL-equivalent iff their stable colour histograms agree.

Hot paths run in index space over
:class:`~repro.graphs.indexed.IndexedGraph`:

* :func:`indexed_colour_partition` is a worklist partition refinement
  (Hopcroft's "process the smaller half" discipline, counting-sort style
  splits) over index arrays — ``O((n + m) log n)`` splitter work instead
  of rebuilding sorted-signature dicts for up to ``n`` full rounds;
* :func:`wl_1_equivalent` refines the *disjoint union* of the two graphs
  once in index space and compares per-side class histograms, which is
  equivalent to the seed's lockstep shared-palette refinement;
* the shared-:class:`ColourInterner` path of :func:`colour_refinement`
  keeps the seed's round-by-round signature structure (its interned ids
  are part of the public contract) but iterates index arrays, not
  label-keyed dicts.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, Mapping, Sequence

from repro.graphs.graph import Graph, Vertex
from repro.graphs.indexed import IndexedGraph


class ColourInterner:
    """Assigns consecutive integers to colour signatures, shared across
    graphs so refinement histories can be compared."""

    def __init__(self) -> None:
        self._palette: dict[Hashable, int] = {}

    def intern(self, signature: Hashable) -> int:
        if signature not in self._palette:
            self._palette[signature] = len(self._palette)
        return self._palette[signature]

    def __len__(self) -> int:
        return len(self._palette)


def indexed_colour_partition(
    graph: IndexedGraph,
    initial: Sequence[int] | None = None,
    backend: str = "auto",
) -> list[int]:
    """The stable 1-WL partition of ``graph`` as a class-id array.

    ``initial`` (when given) seeds the partition: vertices with equal
    initial ids start in the same class.  Returned ids are dense and
    deterministic for a given graph *and backend* but are *not*
    comparable across graphs (or backends) — compare partitions, or
    histograms after refining a disjoint union.

    ``backend`` selects the evaluation tier: ``'auto'`` lets the kernel
    cost model pick (the vectorised counting-sort refinement of
    :mod:`repro.kernel.wl_numpy` for large-enough graphs when numpy is
    importable), ``'python'`` pins the worklist refinement below — the
    differential oracle — and ``'numpy'`` pins the vectorised pass.
    Both compute the same partition (the coarsest equitable refinement
    of the seed, which is unique).

    Worklist refinement: a queue of splitter classes; for each splitter,
    vertices are regrouped by their neighbour count into it (a
    counting-sort signature of one class at a time), and every class that
    splits re-enters the queue minus its largest part (Hopcroft).  Each
    edge is scanned O(log n) times overall.
    """
    n = graph.n
    if n == 0:
        return []

    from repro import kernel

    tier = kernel.resolve("wl", n + len(graph.targets), backend)
    if tier == "numpy":
        from repro.kernel import wl_numpy

        try:
            return wl_numpy.refine_partition(graph, initial=initial)
        except kernel.KernelUnsupported as exc:
            kernel.note_fallback("wl", exc.reason)
            if exc.partial is not None:
                # The vectorised rounds got partway (round budget hit on
                # a long-diameter graph); resume the worklist from the
                # intermediate partition — same unique stable result.
                initial = exc.partial
    adjacency = graph.adjacency_lists()

    colour = [0] * n
    members: dict[int, list[int]] = {}
    if initial is None:
        members[0] = list(range(n))
    else:
        renaming: dict[int, int] = {}
        for v in range(n):
            class_id = renaming.setdefault(initial[v], len(renaming))
            colour[v] = class_id
            members.setdefault(class_id, []).append(v)
    next_id = len(members)

    queue: deque[int] = deque(members)
    while queue:
        splitter = queue.popleft()
        splitter_members = members[splitter]

        counts: dict[int, int] = {}
        for u in splitter_members:
            for w in adjacency[u]:
                counts[w] = counts.get(w, 0) + 1

        touched: dict[int, dict[int, list[int]]] = {}
        for w, hits in counts.items():
            touched.setdefault(colour[w], {}).setdefault(hits, []).append(w)

        for class_id, by_count in touched.items():
            class_members = members[class_id]
            class_size = len(class_members)
            groups = list(by_count.values())
            counted = sum(len(group) for group in groups)
            if counted < class_size:
                groups.append([v for v in class_members if v not in counts])
            if len(groups) == 1:
                continue
            # The largest part keeps the old id and is never re-enqueued:
            # stability against it follows from stability against the old
            # class (just established) and the enqueued smaller parts.  A
            # still-queued old id simply re-processes with its shrunken
            # membership, which covers the same ground.
            groups.sort(key=len, reverse=True)
            members[class_id] = groups[0]
            for group in groups[1:]:
                members[next_id] = group
                for v in group:
                    colour[v] = next_id
                queue.append(next_id)
                next_id += 1
    return colour


def _normalised_initial(
    graph: IndexedGraph,
    initial: Mapping[Vertex, Hashable] | None,
) -> list[int] | None:
    if initial is None:
        return None
    renaming: dict[Hashable, int] = {}
    return [
        renaming.setdefault(initial[label], len(renaming))
        for label in graph.codec.labels
    ]


def _interned_refinement(
    graph: IndexedGraph,
    initial_signatures: list,
    interner: ColourInterner,
) -> list[int]:
    """The seed's synchronous interned refinement over index arrays —
    identical signatures and interner ids, no per-round label hashing."""
    n = graph.n
    adjacency = graph.adjacency_lists()
    colours = [interner.intern(signature) for signature in initial_signatures]
    for _ in range(max(n, 1)):
        num_classes = len(set(colours))
        colours = [
            interner.intern(
                (colours[v], tuple(sorted(colours[u] for u in adjacency[v]))),
            )
            for v in range(n)
        ]
        if len(set(colours)) == num_classes:
            break
    return colours


def colour_refinement(
    graph: Graph,
    initial: Mapping[Vertex, Hashable] | None = None,
    interner: ColourInterner | None = None,
) -> dict[Vertex, int]:
    """The stable 1-WL colouring of ``graph``.

    ``initial`` seeds the refinement (all-equal by default).  Passing a
    shared ``interner`` makes colour ids comparable across calls — this is
    how callers compare two graphs; without one, the worklist partition
    refinement computes the same partition directly.
    """
    indexed = graph.to_indexed()
    labels = indexed.codec.labels
    if interner is not None:
        if initial is None:
            signatures: list = ["uniform"] * indexed.n
        else:
            signatures = [("init", initial[label]) for label in labels]
        colours = _interned_refinement(indexed, signatures, interner)
        return dict(zip(labels, colours))
    partition = indexed_colour_partition(
        indexed, _normalised_initial(indexed, initial),
    )
    return dict(zip(labels, partition))


def colour_histogram(colours: Mapping[Vertex, int]) -> dict[int, int]:
    """Multiset of colours, as a colour → multiplicity map."""
    histogram: dict[int, int] = {}
    for colour in colours.values():
        histogram[colour] = histogram.get(colour, 0) + 1
    return histogram


def wl_1_equivalent(first: Graph, second: Graph) -> bool:
    """1-WL-equivalence: equal stable colour histograms.

    Refines the disjoint union of the two graphs in index space — the
    stable partition of ``G ⊎ G'`` assigns comparable classes to both
    sides, so equality of the per-side class histograms is exactly the
    shared-palette lockstep criterion of the seed.  The classical positive
    example — ``2K3`` vs ``C6`` — is exercised in the tests and in
    experiment E3.
    """
    if first.num_vertices() != second.num_vertices():
        return False
    if first.num_edges() != second.num_edges():
        return False
    indexed_first = first.to_indexed()
    union = IndexedGraph.disjoint_union(indexed_first, second.to_indexed())
    partition = indexed_colour_partition(union)
    boundary = indexed_first.n
    histogram_a: dict[int, int] = {}
    for class_id in partition[:boundary]:
        histogram_a[class_id] = histogram_a.get(class_id, 0) + 1
    histogram_b: dict[int, int] = {}
    for class_id in partition[boundary:]:
        histogram_b[class_id] = histogram_b.get(class_id, 0) + 1
    return histogram_a == histogram_b


def refinement_rounds(graph: Graph) -> int:
    """Number of rounds until the 1-WL colouring stabilises.

    Round-synchronous by definition (the count *is* the number of
    synchronous rounds), but runs over index arrays with dense integer
    signatures rather than interned label dicts.
    """
    indexed = graph.to_indexed()
    n = indexed.n
    adjacency = indexed.adjacency_lists()
    colours = [0] * n
    rounds = 0
    for _ in range(max(n, 1)):
        num_classes = len(set(colours))
        renaming: dict[tuple, int] = {}
        colours = [
            renaming.setdefault(
                (colours[v], tuple(sorted(colours[u] for u in adjacency[v]))),
                len(renaming),
            )
            for v in range(n)
        ]
        if len(set(colours)) == num_classes:
            break
        rounds += 1
    return rounds
