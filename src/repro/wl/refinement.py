"""1-dimensional Weisfeiler-Leman: colour refinement.

The k = 1 case of the WL hierarchy (and of Definition 19, via homomorphism
counts from forests).  Colours are interned into a palette shared across
graphs so stable colourings of two graphs are directly comparable: two
graphs are 1-WL-equivalent iff their stable colour histograms agree.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.graphs.graph import Graph, Vertex


class ColourInterner:
    """Assigns consecutive integers to colour signatures, shared across
    graphs so refinement histories can be compared."""

    def __init__(self) -> None:
        self._palette: dict[Hashable, int] = {}

    def intern(self, signature: Hashable) -> int:
        if signature not in self._palette:
            self._palette[signature] = len(self._palette)
        return self._palette[signature]

    def __len__(self) -> int:
        return len(self._palette)


def colour_refinement(
    graph: Graph,
    initial: Mapping[Vertex, Hashable] | None = None,
    interner: ColourInterner | None = None,
) -> dict[Vertex, int]:
    """The stable 1-WL colouring of ``graph``.

    ``initial`` seeds the refinement (all-equal by default).  Passing a
    shared ``interner`` makes colour ids comparable across calls — this is
    how :func:`wl_1_equivalent` compares two graphs.
    """
    if interner is None:
        interner = ColourInterner()
    if initial is None:
        colours = {v: interner.intern("uniform") for v in graph.vertices()}
    else:
        colours = {v: interner.intern(("init", initial[v])) for v in graph.vertices()}

    for _ in range(max(graph.num_vertices(), 1)):
        num_classes = len(set(colours.values()))
        colours = {
            v: interner.intern(
                (colours[v], tuple(sorted(colours[u] for u in graph.neighbours(v)))),
            )
            for v in graph.vertices()
        }
        if len(set(colours.values())) == num_classes:
            break
    return colours


def colour_histogram(colours: Mapping[Vertex, int]) -> dict[int, int]:
    """Multiset of colours, as a colour → multiplicity map."""
    histogram: dict[int, int] = {}
    for colour in colours.values():
        histogram[colour] = histogram.get(colour, 0) + 1
    return histogram


def wl_1_equivalent(first: Graph, second: Graph) -> bool:
    """1-WL-equivalence: equal stable colour histograms.

    The two graphs are refined *in lockstep* with a shared palette, so the
    interned colour ids of both sides always come from the same refinement
    depth and remain comparable.  The classical positive example — ``2K3``
    vs ``C6`` — is exercised in the tests and in experiment E3.
    """
    if first.num_vertices() != second.num_vertices():
        return False
    interner = ColourInterner()
    colours_a = {v: interner.intern("uniform") for v in first.vertices()}
    colours_b = {v: interner.intern("uniform") for v in second.vertices()}

    def refine(graph: Graph, colours: dict[Vertex, int]) -> dict[Vertex, int]:
        return {
            v: interner.intern(
                (colours[v], tuple(sorted(colours[u] for u in graph.neighbours(v)))),
            )
            for v in graph.vertices()
        }

    if colour_histogram(colours_a) != colour_histogram(colours_b):
        return False
    for _ in range(max(first.num_vertices(), 1)):
        num_classes = len(set(colours_a.values()) | set(colours_b.values()))
        colours_a = refine(first, colours_a)
        colours_b = refine(second, colours_b)
        if colour_histogram(colours_a) != colour_histogram(colours_b):
            return False
        if len(set(colours_a.values()) | set(colours_b.values())) == num_classes:
            break
    return True


def refinement_rounds(graph: Graph) -> int:
    """Number of rounds until the 1-WL colouring stabilises."""
    interner = ColourInterner()
    colours = {v: interner.intern("uniform") for v in graph.vertices()}
    rounds = 0
    for _ in range(max(graph.num_vertices(), 1)):
        num_classes = len(set(colours.values()))
        colours = {
            v: interner.intern(
                (colours[v], tuple(sorted(colours[u] for u in graph.neighbours(v)))),
            )
            for v in graph.vertices()
        }
        if len(set(colours.values())) == num_classes:
            break
        rounds += 1
    return rounds
