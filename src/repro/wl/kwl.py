"""The k-dimensional (folklore) Weisfeiler-Leman algorithm.

Definition 19 of the paper defines k-WL-equivalence through homomorphism
counts from graphs of treewidth at most k.  By Dvořák (2010) and
Dell–Grohe–Rattan (2018), that relation coincides with indistinguishability
under the *folklore* k-WL algorithm (equivalently, (k+1)-variable counting
logic).  This module implements folklore k-WL for k ≥ 2:

* state: a colouring of all ``k``-tuples of vertices;
* initialisation: the ordered atomic type of the tuple (equality pattern +
  adjacency pattern);
* refinement: ``c'(v⃗) = (c(v⃗), {{ (c(v⃗[1←w]), …, c(v⃗[k←w])) : w ∈ V }})``.

For k = 1 callers should use :mod:`repro.wl.refinement` (colour refinement),
which :func:`k_wl_equivalent` dispatches to automatically.
"""

from __future__ import annotations

from itertools import product
from typing import Hashable

from repro.graphs.graph import Graph, Vertex
from repro.wl.refinement import ColourInterner, wl_1_equivalent

Tuple = tuple


def atomic_type(graph: Graph, vertices: Tuple) -> tuple:
    """The ordered isomorphism type of ``vertices`` in ``graph``.

    Encodes, for every index pair ``i < j``, whether the entries coincide
    and whether they are adjacent.  Two tuples have the same atomic type iff
    the map ``v_i ↦ u_i`` is a partial isomorphism.
    """
    k = len(vertices)
    bits = []
    for i in range(k):
        for j in range(i + 1, k):
            bits.append(
                (vertices[i] == vertices[j], graph.has_edge(vertices[i], vertices[j])),
            )
    return tuple(bits)


def k_wl_colouring(
    graph: Graph,
    k: int,
    interner: ColourInterner | None = None,
    max_rounds: int | None = None,
) -> dict[Tuple, int]:
    """The stable folklore k-WL colouring of all k-tuples of ``graph``.

    A shared ``interner`` makes colour identifiers comparable across graphs.
    """
    if k < 2:
        raise ValueError("k_wl_colouring requires k >= 2; use colour_refinement")
    if interner is None:
        interner = ColourInterner()
    vertices = graph.vertices()
    tuples = list(product(vertices, repeat=k))
    colours: dict[Tuple, int] = {
        t: interner.intern(("atomic", atomic_type(graph, t))) for t in tuples
    }
    rounds = max_rounds if max_rounds is not None else max(len(tuples), 1)
    for _ in range(rounds):
        num_classes = len(set(colours.values()))
        updated: dict[Tuple, int] = {}
        for t in tuples:
            neighbourhood: list[tuple] = []
            for w in vertices:
                substituted = tuple(
                    colours[t[:i] + (w,) + t[i + 1:]] for i in range(k)
                )
                neighbourhood.append(substituted)
            neighbourhood.sort()
            updated[t] = interner.intern((colours[t], tuple(neighbourhood)))
        colours = updated
        if len(set(colours.values())) == num_classes:
            break
    return colours


def tuple_colour_histogram(colours: dict[Tuple, int]) -> dict[int, int]:
    """Multiset of tuple colours."""
    histogram: dict[int, int] = {}
    for colour in colours.values():
        histogram[colour] = histogram.get(colour, 0) + 1
    return histogram


def k_wl_equivalent(first: Graph, second: Graph, k: int) -> bool:
    """Are the two graphs k-WL-equivalent (``G ≅_k G'``, Definition 19)?

    Dispatches to colour refinement for k = 1 and to folklore k-WL for
    k ≥ 2.  Runs both graphs through a *shared* palette and compares the
    stable histograms round-by-round (simultaneous refinement), so an
    early divergence short-circuits.
    """
    if k < 1:
        raise ValueError("k must be a positive integer")
    if first.num_vertices() != second.num_vertices():
        return False
    if first.num_edges() != second.num_edges():
        return False
    if k == 1:
        return wl_1_equivalent(first, second)

    interner = ColourInterner()
    vertices_a = first.vertices()
    vertices_b = second.vertices()
    tuples_a = list(product(vertices_a, repeat=k))
    tuples_b = list(product(vertices_b, repeat=k))
    colours_a = {t: interner.intern(("atomic", atomic_type(first, t))) for t in tuples_a}
    colours_b = {t: interner.intern(("atomic", atomic_type(second, t))) for t in tuples_b}

    def histograms_equal() -> bool:
        return tuple_colour_histogram(colours_a) == tuple_colour_histogram(colours_b)

    if not histograms_equal():
        return False

    for _ in range(max(len(tuples_a), 1)):
        num_classes = len(set(colours_a.values()) | set(colours_b.values()))

        def refine(
            graph: Graph,
            vertices: list[Vertex],
            tuples: list[Tuple],
            colours: dict[Tuple, int],
        ) -> dict[Tuple, int]:
            updated: dict[Tuple, int] = {}
            for t in tuples:
                neighbourhood = sorted(
                    tuple(colours[t[:i] + (w,) + t[i + 1:]] for i in range(k))
                    for w in vertices
                )
                updated[t] = interner.intern((colours[t], tuple(neighbourhood)))
            return updated

        colours_a = refine(first, vertices_a, tuples_a, colours_a)
        colours_b = refine(second, vertices_b, tuples_b, colours_b)
        if not histograms_equal():
            return False
        if len(set(colours_a.values()) | set(colours_b.values())) == num_classes:
            break
    return True


def wl_distinguishing_dimension(
    first: Graph,
    second: Graph,
    max_k: int,
) -> int | None:
    """Smallest ``k ≤ max_k`` with ``G ≇_k G'``, or ``None`` if none found.

    By monotonicity of WL-equivalence, once level ``k`` distinguishes, all
    higher levels do too.
    """
    for k in range(1, max_k + 1):
        if not k_wl_equivalent(first, second, k):
            return k
    return None


def initial_partition_from_colours(
    graph: Graph,
    k: int,
    vertex_colours: dict[Vertex, Hashable],
) -> dict[Tuple, tuple]:
    """Atomic types enriched with vertex colours — the initial partition a
    GNN with non-trivial input features induces (Proposition 3)."""
    tuples = product(graph.vertices(), repeat=k)
    return {
        t: (atomic_type(graph, t), tuple(vertex_colours[v] for v in t))
        for t in tuples
    }
