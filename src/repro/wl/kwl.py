"""The k-dimensional (folklore) Weisfeiler-Leman algorithm.

Definition 19 of the paper defines k-WL-equivalence through homomorphism
counts from graphs of treewidth at most k.  By Dvořák (2010) and
Dell–Grohe–Rattan (2018), that relation coincides with indistinguishability
under the *folklore* k-WL algorithm (equivalently, (k+1)-variable counting
logic).  This module implements folklore k-WL for k ≥ 2:

* state: a colouring of all ``k``-tuples of vertices;
* initialisation: the ordered atomic type of the tuple (equality pattern +
  adjacency pattern);
* refinement: ``c'(v⃗) = (c(v⃗), {{ (c(v⃗[1←w]), …, c(v⃗[k←w])) : w ∈ V }})``.

k-tuples are encoded as single integers in index space (mixed-radix over
the :class:`~repro.graphs.indexed.IndexedGraph` vertex indices), so a
colouring is a flat list of length ``n^k`` and the substitution
``v⃗[i←w]`` is one add/multiply — no label tuples are hashed in the inner
loop.  Signatures fed to the shared :class:`ColourInterner` are identical
to the seed's (atomic types and interned ints are label-free), so interned
ids remain comparable across graphs.

For k = 1 callers should use :mod:`repro.wl.refinement` (colour refinement),
which :func:`k_wl_equivalent` dispatches to automatically.
"""

from __future__ import annotations

from itertools import product
from typing import Hashable

from repro.graphs.graph import Graph, Vertex
from repro.graphs.indexed import IndexedGraph
from repro.wl.refinement import ColourInterner, wl_1_equivalent

Tuple = tuple


def atomic_type(graph: Graph, vertices: Tuple) -> tuple:
    """The ordered isomorphism type of ``vertices`` in ``graph``.

    Encodes, for every index pair ``i < j``, whether the entries coincide
    and whether they are adjacent.  Two tuples have the same atomic type iff
    the map ``v_i ↦ u_i`` is a partial isomorphism.
    """
    k = len(vertices)
    bits = []
    for i in range(k):
        for j in range(i + 1, k):
            bits.append(
                (vertices[i] == vertices[j], graph.has_edge(vertices[i], vertices[j])),
            )
    return tuple(bits)


def _indexed_atomic_type(bitsets: tuple[int, ...], vertices: tuple[int, ...]) -> tuple:
    """:func:`atomic_type` over vertex indices and neighbourhood bitsets."""
    k = len(vertices)
    bits = []
    for i in range(k):
        v_i = vertices[i]
        row = bitsets[v_i]
        for j in range(i + 1, k):
            v_j = vertices[j]
            bits.append((v_i == v_j, bool((row >> v_j) & 1)))
    return tuple(bits)


class _TupleSpace:
    """All k-tuples of one indexed graph, as mixed-radix integer codes.

    Code arithmetic: tuples enumerate in ``itertools.product`` order
    (leftmost position slowest), so position ``i`` has stride
    ``n^(k-1-i)`` and the substitution ``v⃗[i←w]`` is
    ``code + (w - v⃗[i]) · stride[i]``.
    """

    __slots__ = ("n", "k", "tuples", "strides", "_bitsets")

    def __init__(self, graph: IndexedGraph, k: int) -> None:
        n = graph.n
        self.n = n
        self.k = k
        self.tuples = list(product(range(n), repeat=k))
        self.strides = [n ** (k - 1 - i) for i in range(k)]
        self._bitsets = graph.bitsets()

    def initial_colouring(self, interner: ColourInterner) -> list[int]:
        # Atomic signatures are consumed here and interned; nothing keeps
        # the n^k signature tuples alive through the refinement rounds.
        bitsets = self._bitsets
        return [
            interner.intern(("atomic", _indexed_atomic_type(bitsets, t)))
            for t in self.tuples
        ]

    def refine(self, colours: list[int], interner: ColourInterner) -> list[int]:
        """One folklore refinement round."""
        n, k, strides = self.n, self.k, self.strides
        updated = [0] * len(colours)
        for code, t in enumerate(self.tuples):
            base = [code - t[i] * strides[i] for i in range(k)]
            neighbourhood = sorted(
                tuple(colours[base[i] + w * strides[i]] for i in range(k))
                for w in range(n)
            )
            updated[code] = interner.intern(
                (colours[code], tuple(neighbourhood)),
            )
        return updated


def k_wl_colouring(
    graph: Graph,
    k: int,
    interner: ColourInterner | None = None,
    max_rounds: int | None = None,
) -> dict[Tuple, int]:
    """The stable folklore k-WL colouring of all k-tuples of ``graph``.

    A shared ``interner`` makes colour identifiers comparable across graphs.
    Keys of the returned mapping are label tuples (the boundary decodes).
    """
    if k < 2:
        raise ValueError("k_wl_colouring requires k >= 2; use colour_refinement")
    if interner is None:
        interner = ColourInterner()
    indexed = graph.to_indexed()
    space = _TupleSpace(indexed, k)
    colours = space.initial_colouring(interner)
    rounds = max_rounds if max_rounds is not None else max(len(colours), 1)
    for _ in range(rounds):
        num_classes = len(set(colours))
        colours = space.refine(colours, interner)
        if len(set(colours)) == num_classes:
            break
    labels = indexed.codec.labels
    return {
        tuple(labels[v] for v in t): colours[code]
        for code, t in enumerate(space.tuples)
    }


def tuple_colour_histogram(colours: dict[Tuple, int]) -> dict[int, int]:
    """Multiset of tuple colours."""
    histogram: dict[int, int] = {}
    for colour in colours.values():
        histogram[colour] = histogram.get(colour, 0) + 1
    return histogram


def _list_histogram(colours: list[int]) -> dict[int, int]:
    histogram: dict[int, int] = {}
    for colour in colours:
        histogram[colour] = histogram.get(colour, 0) + 1
    return histogram


def k_wl_equivalent(first: Graph, second: Graph, k: int) -> bool:
    """Are the two graphs k-WL-equivalent (``G ≅_k G'``, Definition 19)?

    Dispatches to colour refinement for k = 1 and to folklore k-WL for
    k ≥ 2.  Runs both graphs through a *shared* palette and compares the
    stable histograms round-by-round (simultaneous refinement), so an
    early divergence short-circuits.  All work happens on integer tuple
    codes; labels never enter the loop.
    """
    if k < 1:
        raise ValueError("k must be a positive integer")
    if first.num_vertices() != second.num_vertices():
        return False
    if first.num_edges() != second.num_edges():
        return False
    if k == 1:
        return wl_1_equivalent(first, second)

    interner = ColourInterner()
    space_a = _TupleSpace(first.to_indexed(), k)
    space_b = _TupleSpace(second.to_indexed(), k)
    colours_a = space_a.initial_colouring(interner)
    colours_b = space_b.initial_colouring(interner)

    if _list_histogram(colours_a) != _list_histogram(colours_b):
        return False

    for _ in range(max(len(colours_a), 1)):
        num_classes = len(set(colours_a) | set(colours_b))
        colours_a = space_a.refine(colours_a, interner)
        colours_b = space_b.refine(colours_b, interner)
        if _list_histogram(colours_a) != _list_histogram(colours_b):
            return False
        if len(set(colours_a) | set(colours_b)) == num_classes:
            break
    return True


def wl_distinguishing_dimension(
    first: Graph,
    second: Graph,
    max_k: int,
) -> int | None:
    """Smallest ``k ≤ max_k`` with ``G ≇_k G'``, or ``None`` if none found.

    By monotonicity of WL-equivalence, once level ``k`` distinguishes, all
    higher levels do too.
    """
    for k in range(1, max_k + 1):
        if not k_wl_equivalent(first, second, k):
            return k
    return None


def initial_partition_from_colours(
    graph: Graph,
    k: int,
    vertex_colours: dict[Vertex, Hashable],
) -> dict[Tuple, tuple]:
    """Atomic types enriched with vertex colours — the initial partition a
    GNN with non-trivial input features induces (Proposition 3)."""
    tuples = product(graph.vertices(), repeat=k)
    return {
        t: (atomic_type(graph, t), tuple(vertex_colours[v] for v in t))
        for t in tuples
    }
