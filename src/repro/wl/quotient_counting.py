"""Tree homomorphism counts from the 1-WL quotient alone.

The constructive content of Dvořák's direction of characterisation (III)
at level 1: the stable colour-refinement partition of ``G`` — its class
sizes plus the quotient degree matrix ``D[i][j]`` (neighbours in class j of
any vertex in class i) — already determines ``|Hom(T, G)|`` for every
tree ``T``.  Consequently two graphs with a common equitable partition
(equivalently: 1-WL-equivalent, Tinhofer) agree on all tree counts, which
is exactly the ``tw ≤ 1`` slice of Definition 19.

``tree_hom_count_from_quotient`` evaluates the count by dynamic programming
over the tree: for each tree vertex, a vector indexed by the classes of
``G`` giving the number of homomorphisms of its subtree that put it in
each class; children fold in through the quotient matrix.  Tests verify it
against the vertex-level counters and across 1-WL-equivalent pairs.

The quotient itself is extracted in index space: the worklist partition
refinement of :mod:`repro.wl.refinement` produces the stable class array,
and one CSR scan of a representative per class yields the degree matrix —
no label hashing, no per-round ``frozenset`` rebuilds.  Class order is
first-vertex order (deterministic for a given graph); the counts are
order-invariant.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graphs.graph import Graph
from repro.wl.refinement import indexed_colour_partition

Quotient = tuple[tuple[int, ...], tuple[tuple[int, ...], ...]]


def equitable_quotient(graph: Graph) -> Quotient:
    """``(sizes, D)`` of the coarsest equitable partition of ``graph``."""
    indexed = graph.to_indexed()
    partition = indexed_colour_partition(indexed)
    # Densify class ids in first-vertex order and collect sizes +
    # representatives in one pass.
    renaming: dict[int, int] = {}
    sizes: list[int] = []
    representatives: list[int] = []
    for vertex, class_id in enumerate(partition):
        dense = renaming.get(class_id)
        if dense is None:
            renaming[class_id] = len(sizes)
            sizes.append(1)
            representatives.append(vertex)
        else:
            sizes[dense] += 1
    num_classes = len(sizes)
    adjacency = indexed.adjacency_lists()
    degree_matrix = []
    for representative in representatives:
        counts = [0] * num_classes
        for u in adjacency[representative]:
            counts[renaming[partition[u]]] += 1
        degree_matrix.append(tuple(counts))
    return tuple(sizes), tuple(degree_matrix)


def _rooted_children(tree: Graph) -> tuple[list[list[int]], list[int]]:
    """Root the indexed tree at index 0; children lists plus a postorder."""
    indexed = tree.to_indexed()
    adjacency = indexed.adjacency_lists()
    children: list[list[int]] = [[] for _ in range(indexed.n)]
    seen = bytearray(indexed.n)
    seen[0] = 1
    reached = 1
    postorder: list[int] = []
    frontier = [0]
    while frontier:
        current = frontier.pop()
        postorder.append(current)
        for neighbour in adjacency[current]:
            if not seen[neighbour]:
                seen[neighbour] = 1
                reached += 1
                children[current].append(neighbour)
                frontier.append(neighbour)
    if reached != indexed.n:
        raise GraphError("pattern must be connected")
    postorder.reverse()
    return children, postorder


def tree_hom_count_from_quotient(tree: Graph, quotient: Quotient) -> int:
    """``|Hom(T, G)|`` computed purely from G's equitable quotient.

    ``tree`` must be a tree (connected, acyclic); the host graph itself is
    *not* consulted — only its quotient parameters.
    """
    if tree.num_vertices() == 0:
        return 1
    if tree.num_edges() != tree.num_vertices() - 1:
        raise GraphError("pattern must be a tree")
    sizes, degrees = quotient
    num_classes = len(sizes)
    if num_classes == 0:
        return 0

    children, postorder = _rooted_children(tree)
    class_range = range(num_classes)

    # vectors[v][i] = #homs of the subtree at v mapping v into a *fixed*
    # host vertex of class i; children fold in through the quotient matrix.
    vectors: dict[int, list[int]] = {}
    for vertex in postorder:
        vector = [1] * num_classes
        for child in children[vertex]:
            child_vector = vectors.pop(child)
            vector = [
                vector[i]
                * sum(degrees[i][j] * child_vector[j] for j in class_range)
                for i in class_range
            ]
        vectors[vertex] = vector

    root_vector = vectors[0]
    return sum(sizes[i] * root_vector[i] for i in class_range)


def tree_hom_count_via_quotient(tree: Graph, host: Graph) -> int:
    """Convenience wrapper: quotient ``host`` first, then count."""
    return tree_hom_count_from_quotient(tree, equitable_quotient(host))
