"""Tree homomorphism counts from the 1-WL quotient alone.

The constructive content of Dvořák's direction of characterisation (III)
at level 1: the stable colour-refinement partition of ``G`` — its class
sizes plus the quotient degree matrix ``D[i][j]`` (neighbours in class j of
any vertex in class i) — already determines ``|Hom(T, G)|`` for every
tree ``T``.  Consequently two graphs with a common equitable partition
(equivalently: 1-WL-equivalent, Tinhofer) agree on all tree counts, which
is exactly the ``tw ≤ 1`` slice of Definition 19.

``tree_hom_count_from_quotient`` evaluates the count by dynamic programming
over the tree: for each tree vertex, a vector indexed by the classes of
``G`` giving the number of homomorphisms of its subtree that put it in
each class; children fold in through the quotient matrix.  Tests verify it
against the vertex-level counters and across 1-WL-equivalent pairs.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graphs.graph import Graph, Vertex
from repro.wl.equitable import coarsest_equitable_partition, partition_parameters

Quotient = tuple[tuple[int, ...], tuple[tuple[int, ...], ...]]


def equitable_quotient(graph: Graph) -> Quotient:
    """``(sizes, D)`` of the coarsest equitable partition of ``graph``."""
    partition = coarsest_equitable_partition(graph)
    return partition_parameters(graph, partition)


def _root_tree(tree: Graph) -> tuple[Vertex, dict[Vertex, list[Vertex]]]:
    root = tree.vertices()[0]
    children: dict[Vertex, list[Vertex]] = {v: [] for v in tree.vertices()}
    seen = {root}
    frontier = [root]
    while frontier:
        current = frontier.pop()
        for neighbour in tree.neighbours(current):
            if neighbour not in seen:
                seen.add(neighbour)
                children[current].append(neighbour)
                frontier.append(neighbour)
    if len(seen) != tree.num_vertices():
        raise GraphError("pattern must be connected")
    return root, children


def tree_hom_count_from_quotient(tree: Graph, quotient: Quotient) -> int:
    """``|Hom(T, G)|`` computed purely from G's equitable quotient.

    ``tree`` must be a tree (connected, acyclic); the host graph itself is
    *not* consulted — only its quotient parameters.
    """
    if tree.num_vertices() == 0:
        return 1
    if tree.num_edges() != tree.num_vertices() - 1:
        raise GraphError("pattern must be a tree")
    sizes, degrees = quotient
    num_classes = len(sizes)
    if num_classes == 0:
        return 0

    root, children = _root_tree(tree)

    def subtree_vector(vertex: Vertex) -> list[int]:
        """entry i = #homs of the subtree at ``vertex`` mapping it into a
        *fixed* host vertex of class i."""
        vector = [1] * num_classes
        for child in children[vertex]:
            child_vector = subtree_vector(child)
            folded = [
                sum(
                    degrees[i][j] * child_vector[j]
                    for j in range(num_classes)
                )
                for i in range(num_classes)
            ]
            vector = [a * b for a, b in zip(vector, folded)]
        return vector

    root_vector = subtree_vector(root)
    return sum(sizes[i] * root_vector[i] for i in range(num_classes))


def tree_hom_count_via_quotient(tree: Graph, host: Graph) -> int:
    """Convenience wrapper: quotient ``host`` first, then count."""
    return tree_hom_count_from_quotient(tree, equitable_quotient(host))
