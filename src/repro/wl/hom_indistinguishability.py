"""Homomorphism indistinguishability over bounded-treewidth graph classes.

Definition 19 characterises k-WL-equivalence as equality of homomorphism
counts from *all* graphs of treewidth at most k.  That family is infinite;
this module provides the finite restriction used as a cross-check of the
k-WL refinement algorithm: equality of homomorphism counts from all
(connected) graphs of treewidth ≤ k on at most ``max_vertices`` vertices.

Connected patterns suffice because homomorphism counts are multiplicative
over disjoint unions (used explicitly in Corollary 60's proof).

All counting goes through the shared :class:`~repro.engine.engine.HomEngine`:
the pattern family is compiled once per process, and because both graphs of
an indistinguishability check are profiled over the same family, every
pattern's plan is reused and repeat checks are pure cache hits.
"""

from __future__ import annotations

from functools import lru_cache

from repro.engine.engine import HomEngine, default_engine
from repro.graphs.enumeration import all_connected_graphs_up_to_iso
from repro.graphs.graph import Graph
from repro.treewidth.exact import treewidth


@lru_cache(maxsize=None)
def _bounded_treewidth_patterns(k: int, max_vertices: int) -> tuple[Graph, ...]:
    patterns: list[Graph] = []
    for n in range(1, max_vertices + 1):
        for graph in all_connected_graphs_up_to_iso(n):
            if treewidth(graph) <= k:
                patterns.append(graph)
    return tuple(patterns)


def bounded_treewidth_patterns(k: int, max_vertices: int) -> list[Graph]:
    """All connected graphs (up to iso) with ≤ ``max_vertices`` vertices and
    treewidth ≤ k.  Cached; intended for ``max_vertices ≤ 6``."""
    return list(_bounded_treewidth_patterns(k, max_vertices))


def hom_indistinguishable_up_to(
    first: Graph,
    second: Graph,
    k: int,
    max_vertices: int,
    engine: HomEngine | None = None,
) -> bool:
    """Do the graphs agree on hom counts from all tw ≤ k patterns of
    bounded size?  (Necessary condition for ``≅_k``; exact in the limit.)"""
    return (
        distinguishing_pattern(first, second, k, max_vertices, engine=engine)
        is None
    )


def distinguishing_pattern(
    first: Graph,
    second: Graph,
    k: int,
    max_vertices: int,
    engine: HomEngine | None = None,
) -> Graph | None:
    """A concrete tw ≤ k pattern with different hom counts, if one exists
    within the size bound.  Useful for witness reports."""
    engine = engine or default_engine()
    for pattern in _bounded_treewidth_patterns(k, max_vertices):
        if engine.count(pattern, first) != engine.count(pattern, second):
            return pattern
    return None


def hom_profile(
    graph: Graph,
    k: int,
    max_vertices: int,
    engine: HomEngine | None = None,
) -> tuple[int, ...]:
    """The hom-count vector of ``graph`` over the bounded pattern family."""
    engine = engine or default_engine()
    return engine.hom_vector(_bounded_treewidth_patterns(k, max_vertices), graph)


def hom_profiles_batch(
    graphs: list[Graph],
    k: int,
    max_vertices: int,
    engine: HomEngine | None = None,
    processes: int | None = None,
) -> list[tuple[int, ...]]:
    """Hom-count vectors for many graphs over the bounded pattern family.

    The batched form of :func:`hom_profile`: one engine batch evaluates the
    full ``patterns × graphs`` matrix with each pattern compiled once (and
    optionally a worker pool), then the columns are the per-graph profiles.
    """
    engine = engine or default_engine()
    patterns = _bounded_treewidth_patterns(k, max_vertices)
    rows = engine.count_batch(patterns, graphs, processes=processes)
    return [
        tuple(rows[i][j] for i in range(len(patterns)))
        for j in range(len(graphs))
    ]
