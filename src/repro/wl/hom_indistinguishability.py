"""Homomorphism indistinguishability over bounded-treewidth graph classes.

Definition 19 characterises k-WL-equivalence as equality of homomorphism
counts from *all* graphs of treewidth at most k.  That family is infinite;
this module provides the finite restriction used as a cross-check of the
k-WL refinement algorithm: equality of homomorphism counts from all
(connected) graphs of treewidth ≤ k on at most ``max_vertices`` vertices.

Connected patterns suffice because homomorphism counts are multiplicative
over disjoint unions (used explicitly in Corollary 60's proof).
"""

from __future__ import annotations

from functools import lru_cache

from repro.graphs.enumeration import all_connected_graphs_up_to_iso
from repro.graphs.graph import Graph
from repro.homs.counting import count_homomorphisms
from repro.treewidth.exact import treewidth


@lru_cache(maxsize=None)
def _bounded_treewidth_patterns(k: int, max_vertices: int) -> tuple[Graph, ...]:
    patterns: list[Graph] = []
    for n in range(1, max_vertices + 1):
        for graph in all_connected_graphs_up_to_iso(n):
            if treewidth(graph) <= k:
                patterns.append(graph)
    return tuple(patterns)


def bounded_treewidth_patterns(k: int, max_vertices: int) -> list[Graph]:
    """All connected graphs (up to iso) with ≤ ``max_vertices`` vertices and
    treewidth ≤ k.  Cached; intended for ``max_vertices ≤ 6``."""
    return list(_bounded_treewidth_patterns(k, max_vertices))


def hom_indistinguishable_up_to(
    first: Graph,
    second: Graph,
    k: int,
    max_vertices: int,
) -> bool:
    """Do the graphs agree on hom counts from all tw ≤ k patterns of
    bounded size?  (Necessary condition for ``≅_k``; exact in the limit.)"""
    for pattern in _bounded_treewidth_patterns(k, max_vertices):
        if count_homomorphisms(pattern, first) != count_homomorphisms(pattern, second):
            return False
    return True


def distinguishing_pattern(
    first: Graph,
    second: Graph,
    k: int,
    max_vertices: int,
) -> Graph | None:
    """A concrete tw ≤ k pattern with different hom counts, if one exists
    within the size bound.  Useful for witness reports."""
    for pattern in _bounded_treewidth_patterns(k, max_vertices):
        if count_homomorphisms(pattern, first) != count_homomorphisms(pattern, second):
            return pattern
    return None


def hom_profile(
    graph: Graph,
    k: int,
    max_vertices: int,
) -> tuple[int, ...]:
    """The hom-count vector of ``graph`` over the bounded pattern family."""
    return tuple(
        count_homomorphisms(pattern, graph)
        for pattern in _bounded_treewidth_patterns(k, max_vertices)
    )
