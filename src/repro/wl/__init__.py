"""Weisfeiler-Leman algorithms and equivalence tests."""

from repro.wl.equitable import (
    coarsest_equitable_partition,
    doubly_stochastic_witness,
    fractionally_isomorphic,
    have_common_equitable_partition,
    is_equitable,
    partition_parameters,
)
from repro.wl.hom_indistinguishability import (
    bounded_treewidth_patterns,
    distinguishing_pattern,
    hom_indistinguishable_up_to,
    hom_profile,
    hom_profiles_batch,
)
from repro.wl.quotient_counting import (
    equitable_quotient,
    tree_hom_count_from_quotient,
    tree_hom_count_via_quotient,
)
from repro.wl.kwl import (
    atomic_type,
    k_wl_colouring,
    k_wl_equivalent,
    tuple_colour_histogram,
    wl_distinguishing_dimension,
)
from repro.wl.refinement import (
    ColourInterner,
    colour_histogram,
    colour_refinement,
    indexed_colour_partition,
    refinement_rounds,
    wl_1_equivalent,
)

__all__ = [
    "ColourInterner",
    "coarsest_equitable_partition",
    "doubly_stochastic_witness",
    "fractionally_isomorphic",
    "have_common_equitable_partition",
    "is_equitable",
    "partition_parameters",
    "atomic_type",
    "bounded_treewidth_patterns",
    "colour_histogram",
    "colour_refinement",
    "distinguishing_pattern",
    "equitable_quotient",
    "hom_indistinguishable_up_to",
    "hom_profile",
    "hom_profiles_batch",
    "indexed_colour_partition",
    "k_wl_colouring",
    "k_wl_equivalent",
    "refinement_rounds",
    "tree_hom_count_from_quotient",
    "tree_hom_count_via_quotient",
    "tuple_colour_histogram",
    "wl_1_equivalent",
    "wl_distinguishing_dimension",
]
