"""Treewidth: decompositions, exact solver, heuristics, bounds."""

from repro.treewidth.bounds import (
    clique_lower_bound,
    degeneracy,
    max_clique_size,
    mmd_lower_bound,
    treewidth_lower_bound,
)
from repro.treewidth.decomposition import (
    TreeDecomposition,
    decomposition_from_elimination_ordering,
    ordering_width,
    trivial_decomposition,
)
from repro.treewidth.exact import (
    is_treewidth_at_most,
    optimal_tree_decomposition,
    treewidth,
    treewidth_with_ordering,
)
from repro.treewidth.heuristics import (
    heuristic_decomposition,
    heuristic_treewidth_upper_bound,
    min_degree_ordering,
    min_fill_ordering,
)
from repro.treewidth.subset_dp import treewidth_subset_dp
from repro.treewidth.nice import NiceNode, nice_tree_decomposition, validate_nice

__all__ = [
    "TreeDecomposition",
    "NiceNode",
    "clique_lower_bound",
    "decomposition_from_elimination_ordering",
    "degeneracy",
    "heuristic_decomposition",
    "heuristic_treewidth_upper_bound",
    "is_treewidth_at_most",
    "max_clique_size",
    "min_degree_ordering",
    "min_fill_ordering",
    "mmd_lower_bound",
    "nice_tree_decomposition",
    "optimal_tree_decomposition",
    "ordering_width",
    "treewidth",
    "treewidth_lower_bound",
    "treewidth_subset_dp",
    "treewidth_with_ordering",
    "trivial_decomposition",
    "validate_nice",
]
