"""Held–Karp subset dynamic programme for treewidth — an independent
exact oracle.

``TW(S) = min_{v ∈ S} max(TW(S \\ {v}), deg_after(S \\ {v}, v))`` over all
subsets in popcount order, where ``deg_after(S, v)`` counts vertices
outside ``S ∪ {v}`` reachable from ``v`` through ``S``.  Exponential space
(``2^n`` table), practical to ~16 vertices; used purely to cross-check the
branch-and-bound solver (:mod:`repro.treewidth.exact`) in tests and the
ablation bench — two independent implementations of the same quantity.
"""

from __future__ import annotations

from repro.errors import IntractableError
from repro.graphs.graph import Graph
from repro.treewidth.exact import _adjacency_masks, _eliminated_degree

_DEFAULT_LIMIT = 18


def treewidth_subset_dp(graph: Graph, max_vertices: int = _DEFAULT_LIMIT) -> int:
    """Exact treewidth by the full-subset DP.

    Raises :class:`IntractableError` beyond ``max_vertices`` (the table is
    ``2^n`` integers).  Disconnected graphs are solved per component.
    """
    if graph.num_vertices() > max_vertices:
        raise IntractableError(
            f"subset DP limited to {max_vertices} vertices; "
            f"got {graph.num_vertices()}",
        )
    components = graph.connected_components()
    if len(components) > 1:
        return max(
            treewidth_subset_dp(graph.induced_subgraph(component), max_vertices)
            for component in components
        )
    n = graph.num_vertices()
    if n <= 1 or graph.num_edges() == 0:
        return 0

    masks, _ = _adjacency_masks(graph)
    full = (1 << n) - 1
    # table[S] = best achievable max-degree over orderings eliminating S first.
    table = [0] * (full + 1)
    # Iterate subsets in increasing popcount via direct enumeration.
    subsets_by_size: list[list[int]] = [[] for _ in range(n + 1)]
    for subset in range(full + 1):
        subsets_by_size[subset.bit_count()].append(subset)

    for size in range(1, n + 1):
        for subset in subsets_by_size[size]:
            best = n  # upper bound
            remaining = subset
            while remaining:
                low_bit = remaining & -remaining
                remaining ^= low_bit
                vertex = low_bit.bit_length() - 1
                previous = subset ^ low_bit
                degree = _eliminated_degree(masks, previous, vertex)
                candidate = max(table[previous], degree)
                if candidate < best:
                    best = candidate
            table[subset] = best
    return table[full]
