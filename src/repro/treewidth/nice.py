"""Nice tree decompositions.

A *nice* tree decomposition is rooted and every node is one of:

* ``leaf`` — empty bag, no children;
* ``introduce`` — one child, ``bag = child.bag ∪ {vertex}``;
* ``forget`` — one child, ``bag = child.bag \\ {vertex}``;
* ``join`` — two children, all three bags equal.

We additionally normalise the root to an empty bag (a chain of forgets), so
dynamic programmes can read off their final value at the root directly.
The transformation preserves width and yields ``O(width · #bags)`` nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.errors import DecompositionError
from repro.graphs.graph import Graph, Vertex
from repro.treewidth.decomposition import TreeDecomposition


@dataclass
class NiceNode:
    """One node of a nice tree decomposition."""

    kind: str  # 'leaf' | 'introduce' | 'forget' | 'join'
    bag: frozenset
    children: list["NiceNode"] = field(default_factory=list)
    vertex: Optional[Vertex] = None

    def iter_postorder(self) -> Iterator["NiceNode"]:
        """All nodes, children before parents (iterative, stack-safe)."""
        stack: list[tuple[NiceNode, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                yield node
            else:
                stack.append((node, True))
                for child in node.children:
                    stack.append((child, False))

    def count_nodes(self) -> int:
        return sum(1 for _ in self.iter_postorder())

    def width(self) -> int:
        return max(len(node.bag) for node in self.iter_postorder()) - 1


def _chain_from_leaf(target_bag: frozenset) -> NiceNode:
    """leaf → introduce… until the bag equals ``target_bag``."""
    node = NiceNode(kind="leaf", bag=frozenset())
    current: set[Vertex] = set()
    for vertex in sorted(target_bag, key=repr):
        current.add(vertex)
        node = NiceNode(
            kind="introduce",
            bag=frozenset(current),
            children=[node],
            vertex=vertex,
        )
    return node


def _chain_between(node: NiceNode, source_bag: frozenset, target_bag: frozenset) -> NiceNode:
    """Extend ``node`` (top bag ``source_bag``) upwards to ``target_bag``."""
    current = set(source_bag)
    for vertex in sorted(source_bag - target_bag, key=repr):
        current.remove(vertex)
        node = NiceNode(
            kind="forget",
            bag=frozenset(current),
            children=[node],
            vertex=vertex,
        )
    for vertex in sorted(target_bag - source_bag, key=repr):
        current.add(vertex)
        node = NiceNode(
            kind="introduce",
            bag=frozenset(current),
            children=[node],
            vertex=vertex,
        )
    return node


def nice_tree_decomposition(decomposition: TreeDecomposition) -> NiceNode:
    """Convert a tree decomposition into a nice one with an empty root bag."""
    tree = decomposition.tree
    bags = decomposition.bags
    root_id = next(iter(bags))

    # Root the decomposition tree and convert bottom-up.
    parent: dict = {root_id: None}
    order = [root_id]
    frontier = [root_id]
    while frontier:
        current = frontier.pop()
        for neighbour in tree.neighbours(current):
            if neighbour not in parent:
                parent[neighbour] = current
                order.append(neighbour)
                frontier.append(neighbour)

    children_of: dict = {node: [] for node in bags}
    for node, up in parent.items():
        if up is not None:
            children_of[up].append(node)

    converted: dict = {}
    for node in reversed(order):
        bag = bags[node]
        child_chains = [
            _chain_between(converted[child], bags[child], bag)
            for child in children_of[node]
        ]
        if not child_chains:
            converted[node] = _chain_from_leaf(bag)
            continue
        combined = child_chains[0]
        for chain in child_chains[1:]:
            combined = NiceNode(
                kind="join",
                bag=bag,
                children=[combined, chain],
            )
        converted[node] = combined

    root = _chain_between(converted[root_id], bags[root_id], frozenset())
    if root.bag:
        raise DecompositionError("nice decomposition root must have empty bag")
    return root


def validate_nice(root: NiceNode, graph: Graph) -> None:
    """Structural checks for a nice decomposition of ``graph``."""
    for node in root.iter_postorder():
        if node.kind == "leaf":
            if node.children or node.bag:
                raise DecompositionError("leaf nodes must be empty and childless")
        elif node.kind == "introduce":
            (child,) = node.children
            if node.vertex is None or node.bag != child.bag | {node.vertex}:
                raise DecompositionError("introduce node bag mismatch")
        elif node.kind == "forget":
            (child,) = node.children
            if node.vertex is None or node.bag != child.bag - {node.vertex}:
                raise DecompositionError("forget node bag mismatch")
        elif node.kind == "join":
            left, right = node.children
            if not (node.bag == left.bag == right.bag):
                raise DecompositionError("join node bags must agree")
        else:
            raise DecompositionError(f"unknown node kind {node.kind!r}")

    # Reconstruct (T1)/(T3) coverage from the nice tree.
    covered: set[Vertex] = set()
    covered_edges: set[frozenset] = set()
    for node in root.iter_postorder():
        covered |= node.bag
        bag_list = sorted(node.bag, key=repr)
        for i, u in enumerate(bag_list):
            for v in bag_list[i + 1:]:
                if graph.has_edge(u, v):
                    covered_edges.add(frozenset((u, v)))
    if covered != set(graph.vertices()):
        raise DecompositionError("nice decomposition misses vertices")
    expected = {frozenset(e) for e in graph.edges()}
    if covered_edges != expected:
        raise DecompositionError("nice decomposition misses edges")
