"""Elimination-ordering heuristics: upper bounds on treewidth.

Min-degree and min-fill are the classical greedy heuristics.  They are used
(a) as stand-alone fast upper bounds, (b) to seed the exact branch-and-bound
solver with a good incumbent, and (c) in the ablation benchmark comparing
heuristic quality against the exact solver.
"""

from __future__ import annotations

from repro.graphs.graph import Graph, Vertex
from repro.treewidth.decomposition import (
    TreeDecomposition,
    decomposition_from_elimination_ordering,
)


def _fill_in_count(graph: Graph, vertex: Vertex) -> int:
    """Number of missing edges among the neighbours of ``vertex``."""
    neighbours = list(graph.neighbours(vertex))
    missing = 0
    for i, a in enumerate(neighbours):
        for b in neighbours[i + 1:]:
            if not graph.has_edge(a, b):
                missing += 1
    return missing


def _eliminate(graph: Graph, vertex: Vertex) -> None:
    neighbours = list(graph.neighbours(vertex))
    for i, a in enumerate(neighbours):
        for b in neighbours[i + 1:]:
            if not graph.has_edge(a, b):
                graph.add_edge(a, b)
    graph.remove_vertex(vertex)


def min_degree_ordering(graph: Graph) -> list[Vertex]:
    """Repeatedly eliminate a vertex of minimum current degree."""
    working = graph.copy()
    ordering: list[Vertex] = []
    while working.num_vertices() > 0:
        vertex = min(working.vertices(), key=lambda v: (working.degree(v), repr(v)))
        ordering.append(vertex)
        _eliminate(working, vertex)
    return ordering


def min_fill_ordering(graph: Graph) -> list[Vertex]:
    """Repeatedly eliminate a vertex whose elimination adds fewest fill edges."""
    working = graph.copy()
    ordering: list[Vertex] = []
    while working.num_vertices() > 0:
        vertex = min(
            working.vertices(),
            key=lambda v: (_fill_in_count(working, v), working.degree(v), repr(v)),
        )
        ordering.append(vertex)
        _eliminate(working, vertex)
    return ordering


def heuristic_treewidth_upper_bound(graph: Graph) -> tuple[int, list[Vertex]]:
    """Best of min-degree and min-fill; returns ``(width, ordering)``."""
    from repro.treewidth.decomposition import ordering_width

    best_width: int | None = None
    best_ordering: list[Vertex] = []
    for ordering in (min_fill_ordering(graph), min_degree_ordering(graph)):
        width = ordering_width(graph, ordering)
        if best_width is None or width < best_width:
            best_width = width
            best_ordering = ordering
    assert best_width is not None
    return best_width, best_ordering


def heuristic_decomposition(graph: Graph) -> TreeDecomposition:
    """A (possibly suboptimal) tree decomposition from the best heuristic."""
    _, ordering = heuristic_treewidth_upper_bound(graph)
    return decomposition_from_elimination_ordering(graph, ordering)
