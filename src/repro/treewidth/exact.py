"""Exact treewidth via branch-and-bound over elimination orderings.

The solver searches elimination prefixes, memoising on the *set* of
eliminated vertices: the classical observation (Bodlaender et al.) is that
the future cost depends only on which vertices are gone, not on their order.
The "degree after elimination" of a vertex ``v`` given an eliminated set
``S`` is the number of vertices outside ``S ∪ {v}`` reachable from ``v``
through ``S`` — computed directly on bitmasks, so no fill-in graph is ever
materialised.

Pruning: a min-fill/min-degree heuristic incumbent, the MMD/clique lower
bounds, and per-state dominance via the memo table.  Components are solved
independently (treewidth is the max over components).  Practical to ~18
vertices, far beyond what the paper's constructions require.
"""

from __future__ import annotations

from repro.graphs.graph import Graph, Vertex
from repro.treewidth.bounds import treewidth_lower_bound
from repro.treewidth.decomposition import (
    TreeDecomposition,
    decomposition_from_elimination_ordering,
)
from repro.treewidth.heuristics import heuristic_treewidth_upper_bound


def _adjacency_masks(graph: Graph) -> tuple[list[int], list[Vertex]]:
    vertices = graph.vertices()
    index = {v: i for i, v in enumerate(vertices)}
    masks = [0] * len(vertices)
    for u, v in graph.edges():
        masks[index[u]] |= 1 << index[v]
        masks[index[v]] |= 1 << index[u]
    return masks, vertices


def _eliminated_degree(masks: list[int], eliminated: int, vertex: int) -> int:
    """Degree of ``vertex`` once ``eliminated`` is gone.

    Counts vertices outside ``eliminated ∪ {vertex}`` reachable from
    ``vertex`` by a path whose internal vertices all lie in ``eliminated``.
    """
    self_bit = 1 << vertex
    visited = self_bit
    frontier = masks[vertex]
    outside = 0
    while frontier:
        frontier &= ~visited
        if not frontier:
            break
        visited |= frontier
        outside |= frontier & ~eliminated
        inside = frontier & eliminated
        frontier = 0
        remaining = inside
        while remaining:
            low_bit = remaining & -remaining
            remaining ^= low_bit
            frontier |= masks[low_bit.bit_length() - 1]
    return (outside & ~self_bit).bit_count()


class _Solver:
    def __init__(self, graph: Graph) -> None:
        self.masks, self.vertices = _adjacency_masks(graph)
        self.n = len(self.vertices)
        self.full = (1 << self.n) - 1
        ub, ordering = heuristic_treewidth_upper_bound(graph)
        self.best_width = ub
        index = {v: i for i, v in enumerate(self.vertices)}
        self.best_ordering = [index[v] for v in ordering]
        self.lower = treewidth_lower_bound(graph)
        # memo[S] = smallest prefix width with which S has been explored
        self.memo: dict[int, int] = {}
        self.current: list[int] = []

    def solve(self) -> tuple[int, list[Vertex]]:
        if self.lower < self.best_width:
            self._search(0, 0)
        ordering = [self.vertices[i] for i in self.best_ordering]
        return self.best_width, ordering

    def _search(self, eliminated: int, width_so_far: int) -> None:
        if width_so_far >= self.best_width:
            return
        if eliminated == self.full:
            self.best_width = width_so_far
            self.best_ordering = list(self.current)
            return
        seen = self.memo.get(eliminated)
        if seen is not None and seen <= width_so_far:
            return
        self.memo[eliminated] = width_so_far

        candidates: list[tuple[int, int]] = []
        for vertex in range(self.n):
            if eliminated >> vertex & 1:
                continue
            degree = _eliminated_degree(self.masks, eliminated, vertex)
            if max(width_so_far, degree) >= self.best_width:
                continue
            candidates.append((degree, vertex))
            # Simplicial-ish shortcut: eliminating a vertex whose future
            # degree does not exceed the current width is always safe.
            if degree <= max(width_so_far, self.lower):
                candidates = [(degree, vertex)]
                break
        candidates.sort()
        for degree, vertex in candidates:
            self.current.append(vertex)
            self._search(eliminated | (1 << vertex), max(width_so_far, degree))
            self.current.pop()
            if self.best_width <= max(self.lower, width_so_far):
                break


def _treewidth_connected(graph: Graph) -> tuple[int, list[Vertex]]:
    n = graph.num_vertices()
    if n <= 1:
        return 0, graph.vertices()
    if graph.num_edges() == 0:
        return 0, graph.vertices()
    if graph.num_edges() == n * (n - 1) // 2:
        return n - 1, graph.vertices()
    ub, ordering = heuristic_treewidth_upper_bound(graph)
    lb = treewidth_lower_bound(graph)
    if lb == ub:
        return ub, ordering
    solver = _Solver(graph)
    return solver.solve()


def treewidth_with_ordering(graph: Graph) -> tuple[int, list[Vertex]]:
    """Exact treewidth plus an optimal elimination ordering.

    Disconnected graphs are solved per component; the orderings are
    concatenated (which is itself optimal for the whole graph).
    """
    if graph.num_vertices() == 0:
        return 0, []
    width = 0
    ordering: list[Vertex] = []
    for component in graph.connected_components():
        sub = graph.induced_subgraph(component)
        sub_width, sub_ordering = _treewidth_connected(sub)
        width = max(width, sub_width)
        ordering.extend(sub_ordering)
    return width, ordering


def treewidth(graph: Graph) -> int:
    """Exact treewidth of ``graph`` (Definition 10)."""
    return treewidth_with_ordering(graph)[0]


def optimal_tree_decomposition(graph: Graph) -> TreeDecomposition:
    """A width-optimal tree decomposition, built from an optimal ordering."""
    if graph.num_vertices() == 0:
        tree = Graph(vertices=[0])
        return TreeDecomposition(tree, {0: frozenset()})
    _, ordering = treewidth_with_ordering(graph)
    return decomposition_from_elimination_ordering(graph, ordering)


def is_treewidth_at_most(graph: Graph, k: int) -> bool:
    """Decision variant: ``tw(graph) <= k``."""
    return treewidth(graph) <= k
