"""Tree decompositions (Definition 10) and their validation.

A :class:`TreeDecomposition` stores the tree as a :class:`~repro.graphs.Graph`
over bag identifiers plus a mapping from identifier to bag (a frozenset of
vertices of the decomposed graph).  :meth:`TreeDecomposition.validate`
checks (T1) vertex coverage, (T2) connectivity of occurrence sets, and (T3)
edge coverage — every decomposition produced by this library is validated in
tests, and the homomorphism-counting DP validates its input defensively.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Mapping

from repro.errors import DecompositionError
from repro.graphs.graph import Graph, Vertex

BagId = Hashable


class TreeDecomposition:
    """A tree decomposition ``(T, B)`` of a graph.

    Parameters
    ----------
    tree:
        A graph that must be a tree (connected, acyclic) over bag ids.
        A single-bag decomposition may have a one-vertex tree.
    bags:
        Mapping from each tree node to its bag.
    """

    def __init__(self, tree: Graph, bags: Mapping[BagId, Iterable[Vertex]]) -> None:
        self.tree = tree.copy()
        self.bags: dict[BagId, frozenset] = {
            node: frozenset(bag) for node, bag in bags.items()
        }
        if set(self.tree.vertices()) != set(self.bags):
            raise DecompositionError("tree nodes and bag keys must coincide")
        if self.tree.num_vertices() == 0:
            raise DecompositionError("decomposition needs at least one bag")
        if not self.tree.is_connected():
            raise DecompositionError("decomposition tree must be connected")
        if self.tree.num_edges() != self.tree.num_vertices() - 1:
            raise DecompositionError("decomposition tree must be acyclic")

    @property
    def width(self) -> int:
        """``max |B_t| - 1`` over all bags."""
        return max(len(bag) for bag in self.bags.values()) - 1

    def covered_vertices(self) -> frozenset:
        """Union of all bags."""
        covered: set[Vertex] = set()
        for bag in self.bags.values():
            covered |= bag
        return frozenset(covered)

    def validate(self, graph: Graph) -> None:
        """Raise :class:`DecompositionError` unless (T1)-(T3) hold for ``graph``."""
        covered = self.covered_vertices()
        missing = set(graph.vertices()) - covered
        if missing:
            raise DecompositionError(f"(T1) violated: uncovered vertices {missing!r}")

        for vertex in graph.vertices():
            nodes = {t for t, bag in self.bags.items() if vertex in bag}
            if not self._nodes_connected(nodes):
                raise DecompositionError(
                    f"(T2) violated: occurrences of {vertex!r} not connected",
                )

        for u, v in graph.edges():
            if not any(u in bag and v in bag for bag in self.bags.values()):
                raise DecompositionError(
                    f"(T3) violated: edge {{{u!r}, {v!r}}} not covered",
                )

    def _nodes_connected(self, nodes: set[BagId]) -> bool:
        if not nodes:
            return True
        root = next(iter(nodes))
        seen = {root}
        frontier = [root]
        while frontier:
            current = frontier.pop()
            for neighbour in self.tree.neighbours(current):
                if neighbour in nodes and neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return seen == nodes

    def is_valid_for(self, graph: Graph) -> bool:
        """Boolean variant of :meth:`validate`."""
        try:
            self.validate(graph)
        except DecompositionError:
            return False
        return True

    def __repr__(self) -> str:
        return (
            f"TreeDecomposition(bags={len(self.bags)}, width={self.width})"
        )


def trivial_decomposition(graph: Graph) -> TreeDecomposition:
    """The one-bag decomposition containing every vertex (width ``n - 1``)."""
    tree = Graph(vertices=[0])
    return TreeDecomposition(tree, {0: frozenset(graph.vertices())})


def decomposition_from_elimination_ordering(
    graph: Graph,
    ordering: Iterable[Vertex],
) -> TreeDecomposition:
    """Build a tree decomposition from a (perfect) elimination ordering.

    Eliminating vertex ``v`` creates the bag ``{v} ∪ N(v)`` in the current
    fill-in graph, then turns ``N(v)`` into a clique and removes ``v``.
    The bag of ``v`` is attached to the bag of the earliest-eliminated vertex
    among its current neighbours.  The resulting width equals the width of
    the ordering, so an optimal ordering yields an optimal decomposition.
    """
    ordering = list(ordering)
    if set(ordering) != set(graph.vertices()):
        raise DecompositionError("ordering must enumerate every vertex once")

    working = graph.copy()
    position = {v: i for i, v in enumerate(ordering)}
    bags: dict[BagId, frozenset] = {}
    attach_to: dict[BagId, BagId] = {}

    for v in ordering:
        neighbours = sorted(working.neighbours(v), key=lambda u: position[u])
        bags[v] = frozenset([v, *neighbours])
        if neighbours:
            attach_to[v] = neighbours[0]
        for i, a in enumerate(neighbours):
            for b in neighbours[i + 1:]:
                if not working.has_edge(a, b):
                    working.add_edge(a, b)
        working.remove_vertex(v)

    tree = Graph(vertices=ordering)
    for v, parent in attach_to.items():
        tree.add_edge(v, parent)
    # `attach_to` links each bag to a later-eliminated neighbour, which keeps
    # the tree connected except when the graph is disconnected: stitch
    # remaining components along the ordering.
    components = tree.connected_components()
    if len(components) > 1:
        anchors = [
            min(component, key=lambda u: position[u]) for component in components
        ]
        for first, second in zip(anchors, anchors[1:]):
            tree.add_edge(first, second)
    return TreeDecomposition(tree, bags)


def ordering_width(graph: Graph, ordering: Iterable[Vertex]) -> int:
    """Width of the elimination ordering (max back-degree during fill-in)."""
    working = graph.copy()
    width = 0
    for v in list(ordering):
        neighbours = list(working.neighbours(v))
        width = max(width, len(neighbours))
        for i, a in enumerate(neighbours):
            for b in neighbours[i + 1:]:
                if not working.has_edge(a, b):
                    working.add_edge(a, b)
        working.remove_vertex(v)
    return width
