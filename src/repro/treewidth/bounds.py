"""Treewidth lower bounds used to prune the exact solver.

* degeneracy: ``tw(G) >= degeneracy(G)``'s companion bound does not hold
  in general, but the *minimum degree of any subgraph* (the MMD bound,
  achieved by the degeneracy ordering) does: every graph contains a subgraph
  whose minimum degree is the degeneracy, and ``tw >= min-degree of any
  subgraph``.
* clique number on small graphs: ``tw(G) >= ω(G) - 1``.
"""

from __future__ import annotations

from repro.graphs.graph import Graph


def degeneracy(graph: Graph) -> int:
    """The degeneracy (max over subgraphs of the minimum degree)."""
    working = graph.copy()
    best = 0
    while working.num_vertices() > 0:
        vertex = min(working.vertices(), key=lambda v: (working.degree(v), repr(v)))
        best = max(best, working.degree(vertex))
        working.remove_vertex(vertex)
    return best


def mmd_lower_bound(graph: Graph) -> int:
    """Maximum-minimum-degree lower bound: ``tw(G) >= degeneracy(G)``."""
    return degeneracy(graph)


def max_clique_size(graph: Graph, limit: int | None = None) -> int:
    """Size of a maximum clique (Bron–Kerbosch with pivoting).

    ``limit`` stops the search early once a clique of that size is found,
    which is all the exact treewidth solver needs.
    """
    best = 0
    adjacency = {v: graph.neighbours(v) for v in graph.vertices()}

    def expand(candidates: set, excluded: set, size: int) -> None:
        nonlocal best
        if not candidates and not excluded:
            best = max(best, size)
            return
        if limit is not None and best >= limit:
            return
        if size + len(candidates) <= best:
            return
        pivot = max(
            candidates | excluded,
            key=lambda v: len(adjacency[v] & candidates),
        )
        for vertex in list(candidates - adjacency[pivot]):
            expand(
                candidates & adjacency[vertex],
                excluded & adjacency[vertex],
                size + 1,
            )
            candidates.remove(vertex)
            excluded.add(vertex)

    if graph.num_vertices() > 0:
        expand(set(graph.vertices()), set(), 0)
    return best


def clique_lower_bound(graph: Graph) -> int:
    """``tw(G) >= ω(G) - 1``."""
    if graph.num_vertices() == 0:
        return 0
    return max_clique_size(graph) - 1


def treewidth_lower_bound(graph: Graph) -> int:
    """Best available cheap lower bound."""
    if graph.num_vertices() == 0:
        return 0
    return max(mmd_lower_bound(graph), clique_lower_bound(graph))
