"""The :class:`HomEngine` facade: compile once, count many.

``HomEngine`` is the single entry point the rest of the library delegates
to for homomorphism counts.  It owns

* a plan cache (canonical-form keys → compiled
  :class:`~repro.engine.plans.CountPlan`),
* a count cache (``pattern × target × restriction`` → int),
* batch evaluation with optional multiprocessing
  (:mod:`repro.engine.batch`).

A module-level default engine backs ``count_homomorphisms(method='auto')``
so every existing call site transparently gains plan reuse and caching;
code with special lifetime requirements (benchmarks, tests measuring cold
behaviour) constructs private instances.

Engines are thread-safe: the cache tier locks every operation and the
work counters are updated under a lock, so the counting service's worker
pool shares one engine.  Concurrent misses on the same key may both
compute (the result is identical either way); the caches and statistics
never corrupt.
"""

from __future__ import annotations

import threading
from typing import Mapping, Sequence

from repro.engine.batch import run_batch
from repro.engine.cache import (
    DEFAULT_CANONICAL_LIMIT,
    CacheStats,
    EngineCache,
    restriction_key,
    target_key,
)
from repro.engine.plans import CountPlan, compile_plan
from repro.graphs.graph import Graph, Vertex
from repro.obs import child_span, family_snapshot, registry


class HomEngine:
    """A batched, cached, multi-backend homomorphism-count engine."""

    def __init__(
        self,
        plan_capacity: int = 512,
        count_capacity: int = 65536,
        canonical_limit: int = DEFAULT_CANONICAL_LIMIT,
        processes: int | None = None,
        store=None,
    ) -> None:
        self._cache = EngineCache(
            plan_capacity=plan_capacity,
            count_capacity=count_capacity,
            canonical_limit=canonical_limit,
            store=store,
        )
        self.processes = processes
        self.plans_compiled = 0
        self.counts_executed = 0
        self._counter_lock = threading.Lock()

    @property
    def store(self):
        """The persistent tier under the LRUs, or ``None``."""
        return self._cache.store

    def _note_plan_compiled(self) -> None:
        with self._counter_lock:
            self.plans_compiled += 1

    def _note_count_executed(self) -> None:
        with self._counter_lock:
            self.counts_executed += 1

    # ------------------------------------------------------------------
    # planning
    # ------------------------------------------------------------------
    def plan_for(self, pattern: Graph, parent_span=None) -> CountPlan:
        """The compiled plan for ``pattern`` (cached by canonical form).

        ``parent_span`` nests the cold compile span under a caller-held
        span that is not published in the ambient context (the task
        executors trace with :func:`~repro.obs.trace.leaf_span`).
        """
        key = self._cache.pattern_key(pattern)
        plan = self._cache.lookup_plan(key)
        if plan is None:
            with child_span(
                parent_span, "engine.compile", vertices=pattern.num_vertices(),
            ) as sp:
                plan = compile_plan(pattern)
                sp.annotate(backend=plan.kind)
            self._note_plan_compiled()
            self._cache.store_plan(key, plan)
        return plan

    # ------------------------------------------------------------------
    # counting
    # ------------------------------------------------------------------
    def _pattern_id(
        self,
        pattern: Graph,
        allowed: Mapping[Vertex, frozenset] | None,
    ) -> tuple:
        # Unrestricted counts are isomorphism-invariant, so canonical keys
        # let relabelled patterns share plans and counts.  An ``allowed``
        # restriction is expressed in the pattern's own labels: two
        # isomorphic patterns with the same restriction mean different
        # things, and the compiled plan (which bakes in pattern vertices
        # for the restriction lookup) is label-bound — so restricted
        # counts key on the exact labelled pattern.
        if allowed is None:
            return self._cache.pattern_key(pattern)
        return ("label", pattern.edge_fingerprint())

    def count(
        self,
        pattern: Graph,
        target: Graph,
        allowed: Mapping[Vertex, frozenset] | None = None,
        target_id: tuple | None = None,
    ) -> int:
        """``|Hom(pattern, target)|`` (restricted by ``allowed``), cached.

        ``target_id`` short-circuits the target fingerprint with a
        precomputed key (the dataset registry stores one per dataset).
        """
        return self.count_detailed(
            pattern, target, allowed=allowed, target_id=target_id,
        )[0]

    def count_detailed(
        self,
        pattern: Graph,
        target: Graph,
        allowed: Mapping[Vertex, frozenset] | None = None,
        target_id: tuple | None = None,
        parent_span=None,
    ) -> tuple[int, bool]:
        """:meth:`count` plus cache provenance: ``(value, from_cache)``.

        The task API's :class:`~repro.api.result.Result` reports the flag;
        one call computes the cache key once, so provenance costs nothing
        over a plain count.  ``parent_span`` nests the cold compile and
        execute spans under a caller-held (non-published) span; the warm
        cache-hit path opens no spans at all.
        """
        pattern_id = self._pattern_id(pattern, allowed)
        if target_id is None:
            target_id = target_key(target)
        key = (pattern_id, target_id, restriction_key(allowed))
        cached = self._cache.lookup_count(key)
        if cached is not None:
            return cached, True
        plan = self._cache.lookup_plan(pattern_id)
        if plan is None:
            with child_span(
                parent_span, "engine.compile", vertices=pattern.num_vertices(),
            ) as sp:
                plan = compile_plan(pattern)
                sp.annotate(backend=plan.kind)
            self._note_plan_compiled()
            self._cache.store_plan(pattern_id, plan)
        with child_span(parent_span, "engine.execute", backend=plan.kind):
            value = plan.execute(target, allowed=allowed)
        self._note_count_executed()
        self._cache.store_count(key, value)
        return value, False

    def cached_count(
        self,
        pattern: Graph,
        target: Graph,
        allowed: Mapping[Vertex, frozenset] | None = None,
        target_id: tuple | None = None,
    ) -> int | None:
        """The cached count, or ``None`` — never computes anything."""
        key = (
            self._pattern_id(pattern, allowed),
            target_id if target_id is not None else target_key(target),
            restriction_key(allowed),
        )
        return self._cache.lookup_count(key)

    def hom_vector(
        self, patterns: Sequence[Graph], target: Graph,
    ) -> tuple[int, ...]:
        """The hom-count profile of ``target`` over ``patterns``."""
        return tuple(self.count(pattern, target) for pattern in patterns)

    def count_batch(
        self,
        patterns: Sequence[Graph],
        targets: Sequence[Graph],
        allowed: Mapping[Vertex, frozenset] | None = None,
        processes: int | None = None,
        pool: str | None = None,
    ) -> list[list[int]]:
        """``rows[i][j] = |Hom(patterns[i], targets[j])|`` with plan reuse.

        ``pool`` ∈ {``'process'``, ``'thread'``, ``None``} picks the
        worker-pool flavour when ``processes > 1`` (``None`` = automatic:
        threads when the numpy kernel tier would carry the counting).
        """
        if processes is None:
            processes = self.processes
        return run_batch(
            self, patterns, targets, allowed=allowed, processes=processes,
            pool=pool,
        )

    def seed_counts(
        self,
        pattern: Graph,
        targets: Sequence[Graph],
        counts: Sequence[int],
        target_ids: Sequence[tuple] | None = None,
    ) -> None:
        """Fold externally computed counts (e.g. pool results) into the cache.

        ``target_ids`` keys entries under precomputed target keys (dataset
        shard ids) instead of fingerprinting each target — seeded values
        must land on the exact keys later ``cached_count``/``count``
        lookups will use, or they would never be found.
        """
        pattern_id = self._cache.pattern_key(pattern)
        if target_ids is None:
            target_ids = [target_key(target) for target in targets]
        for target_id, value in zip(target_ids, counts):
            key = (pattern_id, target_id, None)
            self._cache.store_count(key, value)

    # ------------------------------------------------------------------
    # introspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def stats(self) -> CacheStats:
        return self._cache.stats

    def stats_summary(self) -> dict[str, int | float]:
        summary = self._cache.stats.snapshot()
        summary["plans_compiled"] = self.plans_compiled
        summary["counts_executed"] = self.counts_executed
        summary["plans_cached"] = len(self._cache.plans)
        summary["counts_cached"] = len(self._cache.counts)
        if self._cache.store is not None:
            for key, value in self._cache.store.stats.snapshot().items():
                summary[f"persistent_{key}"] = value
        return summary

    def reset_stats(self) -> None:
        self._cache.reset_stats()
        with self._counter_lock:
            self.plans_compiled = 0
            self.counts_executed = 0

    def clear(self) -> None:
        """Drop all cached plans and counts (stats are kept)."""
        self._cache.clear()


_default_engine: HomEngine | None = None


def default_engine() -> HomEngine:
    """The process-wide engine behind ``count_homomorphisms(method='auto')``."""
    global _default_engine
    if _default_engine is None:
        _default_engine = HomEngine()
    return _default_engine


def set_default_engine(engine: HomEngine | None) -> HomEngine | None:
    """Swap the process-wide engine (pass ``None`` to reset lazily).

    Returns the previous engine so callers can restore it — used by tests
    and benchmarks that need a cold cache.
    """
    global _default_engine
    previous = _default_engine
    _default_engine = engine
    return previous


# ----------------------------------------------------------------------
# metrics export
# ----------------------------------------------------------------------
_EVENT_NAMES = {
    "hits": "hit",
    "misses": "miss",
    "requests": "request",
    "evictions": "eviction",
}


def engine_metric_families(
    engine: HomEngine, label: str = "default",
) -> list[tuple[str, dict]]:
    """One engine's :meth:`~HomEngine.stats_summary` as metric families.

    Collectors call this at scrape time, so the counting hot path pays
    nothing for metrics export; derived ``*_rate`` fields are skipped
    (rates are recomputable from the counters).
    """
    summary = engine.stats_summary()
    events: list[tuple[dict, int | float]] = []
    entries: list[tuple[dict, int | float]] = []
    work: list[tuple[dict, int | float]] = []
    for field, value in summary.items():
        tier, name = "memory", field
        if name.startswith("persistent_"):
            tier, name = "store", name[len("persistent_"):]
        if name.endswith("_rate"):
            continue
        if name in ("plans_compiled", "counts_executed"):
            kind = "compile" if name == "plans_compiled" else "execute"
            work.append(({"engine": label, "kind": kind}, value))
            continue
        if name in ("plans_cached", "counts_cached"):
            cache = "plan" if name == "plans_cached" else "count"
            entries.append(({"engine": label, "cache": cache}, value))
            continue
        cache, _, suffix = name.partition("_")
        event = _EVENT_NAMES.get(suffix)
        if cache in ("plan", "count") and event is not None:
            events.append((
                {"engine": label, "tier": tier, "cache": cache, "event": event},
                value,
            ))
    return [
        family_snapshot(
            "repro_engine_cache_events_total", "counter", events,
            help="Engine cache lookups by tier, cache, and outcome.",
        ),
        family_snapshot(
            "repro_engine_cache_entries", "gauge", entries,
            help="Live entries in the in-memory plan and count caches.",
        ),
        family_snapshot(
            "repro_engine_work_total", "counter", work,
            help="Plans compiled and plan executions run by the engine.",
        ),
    ]


def _default_engine_collector() -> list[tuple[str, dict]]:
    # Reads the module global at scrape time, so swapping engines with
    # set_default_engine (tests, benchmarks) is automatically reflected.
    if _default_engine is None:
        return []
    return engine_metric_families(_default_engine, label="default")


registry().register_collector(_default_engine_collector)
