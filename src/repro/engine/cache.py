"""Caching layer for the counting engine.

Two caches, one policy:

* the **plan cache** memoises compiled :class:`~repro.engine.plans.CountPlan`
  objects behind *canonical-form* keys, so isomorphic patterns — however
  they are labelled — share one compilation;
* the **count cache** memoises finished counts behind
  ``(pattern key, target key, restriction key)`` triples.

Both are bounded LRU maps; hit/miss/eviction counters feed the
``repro engine-stats`` CLI and the determinism tests (a warm second pass
must recompute nothing).

Every cache operation is guarded by a re-entrant lock, so one
:class:`EngineCache` (and therefore one engine) can be shared by the
service's worker threads without corrupting entries or statistics.

An optional **persistent store** (duck-typed; see
:class:`repro.service.store.PersistentStore`) sits *under* the LRU tier:
in-memory misses consult the store before reporting ``None``, and every
write goes through to it, so compiled plans and finished counts survive
process restarts.  The store keeps its own :class:`CacheStats`; the memory
counters here are unchanged by its presence.

Canonicalisation is individualisation–refinement and therefore exponential
on highly symmetric graphs, so patterns above ``canonical_limit`` vertices
fall back to the label-level :meth:`~repro.graphs.graph.Graph.edge_fingerprint`
— still a sound cache key, just not isomorphism-invariant.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.errors import EngineError
from repro.graphs.canonical import canonical_form
from repro.graphs.graph import Graph, Vertex

# Above this many vertices, canonical forms may branch factorially on
# symmetric colour classes; label-level fingerprints take over.
DEFAULT_CANONICAL_LIMIT = 6

_MISSING = object()


@dataclass
class CacheStats:
    """Counters for one :class:`EngineCache`."""

    plan_hits: int = 0
    plan_misses: int = 0
    plan_evictions: int = 0
    count_hits: int = 0
    count_misses: int = 0
    count_evictions: int = 0

    @property
    def plan_requests(self) -> int:
        return self.plan_hits + self.plan_misses

    @property
    def count_requests(self) -> int:
        return self.count_hits + self.count_misses

    @property
    def count_hit_rate(self) -> float:
        total = self.count_requests
        return self.count_hits / total if total else 0.0

    def snapshot(self) -> dict[str, int | float]:
        return {
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "plan_requests": self.plan_requests,
            "plan_evictions": self.plan_evictions,
            "count_hits": self.count_hits,
            "count_misses": self.count_misses,
            "count_requests": self.count_requests,
            "count_evictions": self.count_evictions,
            "count_hit_rate": round(self.count_hit_rate, 4),
        }

    def reset(self) -> None:
        self.plan_hits = self.plan_misses = self.plan_evictions = 0
        self.count_hits = self.count_misses = self.count_evictions = 0


class LRUCache:
    """A bounded mapping evicting the least-recently-used entry."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise EngineError("cache maxsize must be positive")
        self.maxsize = maxsize
        self.evictions = 0
        self._data: OrderedDict[Hashable, object] = OrderedDict()

    def get(self, key: Hashable, default=None):
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            return default
        self._data.move_to_end(key)
        return value

    def put(self, key: Hashable, value) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        if len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self.evictions += 1

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()


def pattern_key(
    pattern: Graph, canonical_limit: int = DEFAULT_CANONICAL_LIMIT,
) -> tuple:
    """Cache identity of a pattern: canonical form when affordable."""
    if pattern.num_vertices() <= canonical_limit:
        return ("canon", canonical_form(pattern))
    return ("label", pattern.edge_fingerprint())


def target_key(target: Graph) -> tuple:
    """Cache identity of a target (label-level; targets can be large)."""
    return ("label", target.edge_fingerprint())


def restriction_key(
    allowed: Mapping[Vertex, frozenset] | None,
) -> Hashable:
    """Hashable identity of an ``allowed`` candidate restriction."""
    if allowed is None:
        return None
    return frozenset((v, frozenset(pool)) for v, pool in allowed.items())


class EngineCache:
    """Plan + count caches with shared statistics."""

    def __init__(
        self,
        plan_capacity: int = 512,
        count_capacity: int = 65536,
        canonical_limit: int = DEFAULT_CANONICAL_LIMIT,
        store=None,
    ) -> None:
        self.canonical_limit = canonical_limit
        self.plans = LRUCache(plan_capacity)
        self.counts = LRUCache(count_capacity)
        # Canonicalisation is the only expensive key ingredient, so it is
        # memoised behind the O(n + m) label fingerprint: counting the same
        # pattern object against many targets canonicalises it once.
        self._canonical_keys = LRUCache(4 * plan_capacity)
        self.stats = CacheStats()
        # Persistent tier: any object with load_plan/save_plan and
        # load_count/save_count taking the same keys the LRUs use.
        self.store = store
        self._lock = threading.RLock()

    def pattern_key(self, pattern: Graph) -> tuple:
        if pattern.num_vertices() > self.canonical_limit:
            return ("label", pattern.edge_fingerprint())
        fingerprint = pattern.edge_fingerprint()
        with self._lock:
            key = self._canonical_keys.get(fingerprint)
        if key is None:
            key = ("canon", canonical_form(pattern))
            with self._lock:
                self._canonical_keys.put(fingerprint, key)
        return key

    def lookup_plan(self, key: tuple):
        with self._lock:
            plan = self.plans.get(key)
            if plan is not None:
                self.stats.plan_hits += 1
                return plan
            self.stats.plan_misses += 1
        if self.store is not None:
            plan = self.store.load_plan(key)
            if plan is not None:
                with self._lock:
                    before = self.plans.evictions
                    self.plans.put(key, plan)
                    self.stats.plan_evictions += self.plans.evictions - before
                return plan
        return None

    def store_plan(self, key: tuple, plan) -> None:
        with self._lock:
            before = self.plans.evictions
            self.plans.put(key, plan)
            self.stats.plan_evictions += self.plans.evictions - before
        if self.store is not None:
            self.store.save_plan(key, plan)

    def lookup_count(self, key: tuple) -> int | None:
        with self._lock:
            value = self.counts.get(key)
            if value is not None:
                self.stats.count_hits += 1
                return value
            self.stats.count_misses += 1
        if self.store is not None:
            value = self.store.load_count(key)
            if value is not None:
                with self._lock:
                    before = self.counts.evictions
                    self.counts.put(key, value)
                    self.stats.count_evictions += self.counts.evictions - before
                return value
        return None

    def store_count(self, key: tuple, value: int) -> None:
        with self._lock:
            before = self.counts.evictions
            self.counts.put(key, value)
            self.stats.count_evictions += self.counts.evictions - before
        if self.store is not None:
            self.store.save_count(key, value)

    def clear(self) -> None:
        with self._lock:
            self.plans.clear()
            self.counts.clear()

    def reset_stats(self) -> None:
        with self._lock:
            self.stats.reset()
