"""Compilation of patterns into executable counting plans.

Every homomorphism count in the library factors through a *plan*: a
pattern-only artefact that is expensive to build once and cheap to execute
against arbitrarily many targets.  Three plan families cover the cost
spectrum:

* :class:`MatrixPlan` — closed-form linear algebra for paths and cycles
  (``|Hom(P_k, G)| = 1ᵀA^{k-1}1``, ``|Hom(C_k, G)| = trace(A^k)``);
* :class:`DPPlan` — the treewidth DP with the nice tree decomposition
  *and* all per-node bag bookkeeping (vertex positions, neighbour
  positions) precompiled into a flat instruction tape;
* :class:`BrutePlan` — backtracking, still the right answer for tiny or
  dense patterns where decomposition buys nothing.

:func:`compile_plan` chooses between them with a treewidth-aware cost
model: the brute-force search explores ``O(n_G^{|V(H)|})`` states while the
DP explores ``O(n_G^{tw(H)+1})`` per node, so the greedy treewidth upper
bound (cheap, no branch-and-bound) decides which exponent is smaller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Literal, Mapping, Sequence

from repro.graphs.graph import Graph, Vertex
from repro.graphs.matrices import count_closed_walks, count_walks
from repro.homs.brute_force import count_homomorphisms_brute
from repro.treewidth.heuristics import heuristic_treewidth_upper_bound
from repro.treewidth.exact import optimal_tree_decomposition
from repro.treewidth.nice import NiceNode, nice_tree_decomposition

PlanKind = Literal["constant", "brute", "matrix", "dp"]

# Patterns at or below this size never benefit from a decomposition: the
# DP's table machinery costs more than exhausting the search space.
_TINY_PATTERN_LIMIT = 3


class CountPlan:
    """Base class: a compiled, reusable counter for one pattern."""

    kind: PlanKind = "constant"

    def execute(
        self,
        target: Graph,
        allowed: Mapping[Vertex, frozenset] | None = None,
    ) -> int:
        raise NotImplementedError

    def describe(self) -> str:
        """One-line human-readable summary (CLI / benchmark reporting)."""
        return self.kind

    def describe_for(self, target: Graph) -> str:
        """:meth:`describe` plus the kernel tier the cost model would
        pick for ``target`` (``.../numpy`` or ``.../python``) — the
        string the task API surfaces as ``Result.backend``."""
        return self.describe()


@dataclass
class ConstantPlan(CountPlan):
    """The empty pattern: exactly one (empty) homomorphism into anything."""

    value: int = 1
    kind: PlanKind = "constant"

    def execute(self, target, allowed=None):
        return self.value


@dataclass
class BrutePlan(CountPlan):
    """Backtracking search — reference backend, kept for tiny/dense patterns."""

    pattern: Graph
    kind: PlanKind = "brute"

    def execute(self, target, allowed=None):
        return count_homomorphisms_brute(self.pattern, target, allowed=allowed)

    def describe(self) -> str:
        return f"brute(n={self.pattern.num_vertices()})"

    def describe_for(self, target: Graph) -> str:
        from repro import kernel

        tier = kernel.would_select("bitset", target.num_vertices())
        return f"{self.describe()}/{tier}"


@dataclass
class MatrixPlan(CountPlan):
    """Closed-form plan for paths/cycles via adjacency-matrix powers.

    ``shape='path'`` counts walks with ``length`` edges
    (``|Hom(P_{length+1}, G)|``); ``shape='cycle'`` counts closed walks of
    ``length`` edges (``|Hom(C_length, G)|``, ``length >= 3``).

    Colour restrictions (``allowed``) have no closed form, so the plan
    carries a combinatorial ``fallback`` used whenever they are present.
    """

    pattern: Graph
    shape: Literal["path", "cycle"]
    length: int
    fallback: CountPlan
    kind: PlanKind = "matrix"

    def execute(self, target, allowed=None):
        if allowed is not None:
            return self.fallback.execute(target, allowed=allowed)
        if self.shape == "path":
            return count_walks(target, self.length)
        return count_closed_walks(target, self.length)

    def describe(self) -> str:
        return f"matrix({self.shape}, length={self.length})"

    def describe_for(self, target: Graph) -> str:
        from repro import kernel

        tier = kernel.would_select("matrix", target.num_vertices())
        return f"{self.describe()}/{tier}"


# One instruction per nice-tree node, in postorder.  All pattern-side index
# arithmetic (`bag_order`, `.index(...)` calls) is resolved at compile time;
# execution only touches target vertex *indices*: the target is encoded
# once per graph value (``Graph.to_indexed`` caches), DP keys are int
# tuples, and candidate images come from neighbourhood-bitset
# intersections.  Bags are ordered by pattern codec index — a total order,
# unlike the seed's ``repr``-sort, which could collide.
_LEAF = 0
_INTRODUCE = 1
_FORGET = 2
_JOIN = 3


@dataclass
class DPPlan(CountPlan):
    """Treewidth DP with a precompiled instruction tape.

    Instructions operate on a stack of DP tables (postorder ≡ reverse
    Polish), so execution is a single loop with no tree traversal, no
    ``sorted`` calls, and no ``list.index`` lookups per target.
    """

    pattern: Graph
    width: int
    node_count: int
    instructions: Sequence[tuple] = field(repr=False)
    kind: PlanKind = "dp"

    def execute(self, target, allowed=None, backend: str = "auto"):
        """Count against ``target``.

        ``backend`` picks the evaluation tier: ``'auto'`` applies the
        kernel cost model (numpy for large-enough targets when
        importable), ``'python'`` pins the pure tape (the oracle),
        ``'numpy'`` pins the vectorised tape.  A numpy run that could
        leave int64 falls back to the pure tape — results are exact on
        every tier.
        """
        if target.num_vertices() == 0:
            return 0
        indexed_target = target.to_indexed()

        from repro import kernel

        tier = kernel.resolve("dp", indexed_target.n, backend)
        if tier == "numpy" and kernel.dp_packable(indexed_target.n, self.width + 1):
            from repro.kernel import dp_numpy

            if allowed is None:
                masks = None
            else:
                encode_mask = indexed_target.codec.encode_mask
                masks = {
                    vertex: encode_mask(pool)
                    for vertex, pool in allowed.items()
                }
            try:
                return dp_numpy.execute_tape(
                    self.instructions, indexed_target, self.width + 1,
                    allowed_masks=masks,
                )
            except kernel.KernelUnsupported as exc:
                kernel.note_fallback("dp", exc.reason)
        elif tier == "numpy":
            kernel.note_fallback("dp", "overflow")
        return self._execute_python(indexed_target, allowed)

    def _execute_python(self, indexed_target, allowed):
        """The pure-Python instruction tape — the differential oracle."""
        target_bits = indexed_target.bitsets()
        full_pool = (1 << indexed_target.n) - 1
        stack: list[dict[tuple, int]] = []

        for instruction in self.instructions:
            op = instruction[0]
            if op == _LEAF:
                stack.append({(): 1})
            elif op == _INTRODUCE:
                _, vertex, position, neighbour_positions = instruction
                child = stack.pop()
                if allowed is not None and vertex in allowed:
                    base_pool = indexed_target.codec.encode_mask(
                        allowed[vertex],
                    )
                else:
                    base_pool = full_pool
                table: dict[tuple, int] = {}
                for key, count in child.items():
                    pool = base_pool
                    for pos in neighbour_positions:
                        pool &= target_bits[key[pos]]
                    while pool:
                        low_bit = pool & -pool
                        pool ^= low_bit
                        image = low_bit.bit_length() - 1
                        new_key = (
                            key[:position] + (image,) + key[position:]
                        )
                        table[new_key] = table.get(new_key, 0) + count
                stack.append(table)
            elif op == _FORGET:
                _, drop = instruction
                child = stack.pop()
                table = {}
                for key, count in child.items():
                    new_key = key[:drop] + key[drop + 1:]
                    table[new_key] = table.get(new_key, 0) + count
                stack.append(table)
            else:  # _JOIN
                left = stack.pop()
                right = stack.pop()
                if len(left) > len(right):
                    left, right = right, left
                table = {}
                for key, count in left.items():
                    other = right.get(key)
                    if other:
                        table[key] = count * other
                stack.append(table)

        (root_table,) = stack
        return root_table.get((), 0)

    def describe(self) -> str:
        return (
            f"dp(n={self.pattern.num_vertices()}, width={self.width}, "
            f"nodes={self.node_count})"
        )

    def describe_for(self, target: Graph) -> str:
        from repro import kernel

        tier = kernel.would_select("dp", target.num_vertices())
        if tier == "numpy" and not kernel.dp_packable(
            target.num_vertices(), self.width + 1,
        ):
            tier = "python"
        return f"{self.describe()}/{tier}"


def _compile_instructions(pattern: Graph, root: NiceNode) -> list[tuple]:
    indexed_pattern = pattern.to_indexed()
    encode = indexed_pattern.codec.encode
    pattern_adjacency = indexed_pattern.adjacency_lists()

    def bag_order(bag: frozenset) -> list[int]:
        return sorted(encode(v) for v in bag)

    instructions: list[tuple] = []
    for node in root.iter_postorder():
        if node.kind == "leaf":
            instructions.append((_LEAF,))
        elif node.kind == "introduce":
            child_order = bag_order(node.children[0].bag)
            vertex_index = encode(node.vertex)
            position = bag_order(node.bag).index(vertex_index)
            child_bag_indices = set(child_order)
            neighbour_positions = tuple(
                child_order.index(u)
                for u in pattern_adjacency[vertex_index]
                if u in child_bag_indices
            )
            # The label rides along for ``allowed`` lookups at execute
            # time; all positional arithmetic is already index-space.
            instructions.append(
                (_INTRODUCE, node.vertex, position, neighbour_positions),
            )
        elif node.kind == "forget":
            drop = bag_order(node.children[0].bag).index(encode(node.vertex))
            instructions.append((_FORGET, drop))
        elif node.kind == "join":
            instructions.append((_JOIN,))
        else:  # pragma: no cover - validate_nice rejects unknown kinds
            raise AssertionError(f"unknown node kind {node.kind!r}")
    return instructions


def compile_dp_plan(pattern: Graph) -> DPPlan:
    """Compile the treewidth-DP plan (optimal decomposition, flat tape)."""
    root = nice_tree_decomposition(optimal_tree_decomposition(pattern))
    return DPPlan(
        pattern=pattern,
        width=root.width(),
        node_count=root.count_nodes(),
        instructions=_compile_instructions(pattern, root),
    )


def _path_or_cycle(pattern: Graph) -> Literal["path", "cycle"] | None:
    n = pattern.num_vertices()
    if n == 0 or not pattern.is_connected():
        return None
    degrees = [pattern.degree(v) for v in pattern.vertices()]
    m = pattern.num_edges()
    if m == n and all(d == 2 for d in degrees):
        return "cycle"
    if m == n - 1 and max(degrees, default=0) <= 2:
        return "path"
    return None


def select_backend(pattern: Graph) -> Literal["brute", "matrix", "dp"]:
    """The treewidth-aware ``method='auto'`` crossover.

    Brute force explores at most ``n_G^{n}`` assignments for an
    ``n``-vertex pattern; the DP costs ``n_G^{tw+1}`` per nice node plus a
    decomposition.  A cheap greedy upper bound on the treewidth therefore
    settles the choice: the DP wins exactly when it shaves at least one
    exponent level off the search (``tw + 2 <= n``), which routes dense
    small patterns (e.g. K5: tw+1 = n) to brute force and sparse large
    patterns (e.g. trees of any size: tw = 1) to the DP — the two cases a
    fixed vertex-count cutoff gets wrong.
    """
    if _path_or_cycle(pattern) is not None:
        return "matrix"
    n = pattern.num_vertices()
    if n <= _TINY_PATTERN_LIMIT:
        return "brute"
    width_bound, _ = heuristic_treewidth_upper_bound(pattern)
    if width_bound + 2 > n:
        return "brute"
    return "dp"


def compile_plan(pattern: Graph) -> CountPlan:
    """Compile ``pattern`` into the cheapest-to-execute plan."""
    if pattern.num_vertices() == 0:
        return ConstantPlan(1)
    shape = _path_or_cycle(pattern)
    if shape is not None:
        if pattern.num_vertices() <= _TINY_PATTERN_LIMIT + 1:
            fallback: CountPlan = BrutePlan(pattern)
        else:
            fallback = compile_dp_plan(pattern)
        length = (
            pattern.num_vertices()
            if shape == "cycle"
            else pattern.num_vertices() - 1
        )
        return MatrixPlan(
            pattern=pattern, shape=shape, length=length, fallback=fallback,
        )
    if select_backend(pattern) == "brute":
        return BrutePlan(pattern)
    return compile_dp_plan(pattern)
