"""Batched pattern-set × target-set evaluation.

The hot workloads — WL indistinguishability (one pattern family, two
targets), hom-profile features (one family, many targets), E1/E6
benchmarks — are all cross products.  :func:`run_batch` evaluates the full
``len(patterns) × len(targets)`` matrix with each pattern compiled exactly
once, consulting the engine's count cache before any recomputation.

An optional worker pool splits the matrix into pattern-aligned chunks
(so every worker also compiles each of its patterns only once).  Two
pool flavours are supported: ``pool='process'`` (``multiprocessing``,
sidesteps the GIL for pure-Python counting) and ``pool='thread'``
(``concurrent.futures.ThreadPoolExecutor`` — no fork or pickling cost,
the right choice when the numpy kernel tier carries the counting work,
since the heavy ndarray steps release the GIL).  ``pool=None`` lets the
kernel cost model pick: threads when the vectorised DP tier would serve
the batch's targets, processes otherwise.  Pool results are folded back
into the engine cache, so a parallel batch warms subsequent sequential
calls.  Pool failures — missing OS support in sandboxes, unpicklable
exotic vertex labels — degrade silently to the sequential path:
batching is an optimisation, never a correctness dependency.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Mapping, Sequence

from repro.graphs.graph import Graph, Vertex
from repro.engine.plans import compile_plan

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.engine import HomEngine

# Minimum number of (pattern, target) cells per worker chunk; below this the
# fork/pickle overhead dwarfs the counting work.
_MIN_CHUNK = 4


def _pool_worker(task: tuple[Graph, list[Graph]]) -> list[int]:
    """Count one pattern against a chunk of targets (runs in a worker)."""
    pattern, targets = task
    plan = compile_plan(pattern)
    return [plan.execute(target) for target in targets]


def _chunked(items: list, size: int) -> list[list]:
    return [items[i:i + size] for i in range(0, len(items), size)]


def _pick_pool(targets: Sequence[Graph]) -> str:
    """``'thread'`` when the vectorised kernel would carry the work.

    Worker chunks spend their time in ``plan.execute``; if the kernel
    cost model routes the median target to the numpy DP tier, those
    executions release the GIL inside the ndarray steps and threads beat
    the fork + pickle tax of a process pool.
    """
    from repro import kernel

    sizes = sorted(target.num_vertices() for target in targets)
    median = sizes[len(sizes) // 2] if sizes else 0
    return "thread" if kernel.would_select("dp", median) == "numpy" else "process"


def _run_batch_pool(
    engine: "HomEngine",
    patterns: Sequence[Graph],
    targets: Sequence[Graph],
    processes: int,
    pool: str,
) -> list[list[int]] | None:
    # Probe the count cache first; only misses travel to the pool, so a
    # warm repeat of a parallel batch never forks at all.
    rows: list[list[int | None]] = [
        [engine.cached_count(pattern, target) for target in targets]
        for pattern in patterns
    ]
    tasks: list[tuple[Graph, list[Graph]]] = []
    slots: list[tuple[int, list[int]]] = []
    total_missing = sum(row.count(None) for row in rows)
    if total_missing == 0:
        return rows  # type: ignore[return-value]
    chunk_size = max(_MIN_CHUNK, total_missing // processes or 1)
    for i, pattern in enumerate(patterns):
        missing = [j for j, value in enumerate(rows[i]) if value is None]
        for chunk in _chunked(missing, chunk_size):
            tasks.append((pattern, [targets[j] for j in chunk]))
            slots.append((i, chunk))

    try:
        if pool == "thread":
            from concurrent.futures import ThreadPoolExecutor

            with ThreadPoolExecutor(max_workers=processes) as executor:
                chunk_results = list(executor.map(_pool_worker, tasks))
        else:
            import multiprocessing

            with multiprocessing.Pool(processes=processes) as worker_pool:
                chunk_results = worker_pool.map(_pool_worker, tasks)
    except Exception:  # pragma: no cover - platform-dependent failure modes
        return None

    for (i, chunk), counts in zip(slots, chunk_results):
        chunk_targets = [targets[j] for j in chunk]
        for j, value in zip(chunk, counts):
            rows[i][j] = value
        engine.seed_counts(patterns[i], chunk_targets, counts)
    return rows  # type: ignore[return-value]


def run_shard_batch(
    engine: "HomEngine",
    pattern: Graph,
    shards: Sequence[Graph],
    shard_ids: Sequence[tuple],
    parent_span=None,
    processes: int | None = None,
) -> tuple[int, bool]:
    """Sum ``|Hom(pattern, shard)|`` over a dataset's component shards.

    The service executors' sharded-count path: probes the count cache
    under each shard's precomputed id, then — when the kernel cost model
    says the numpy DP tier carries these shards (its ndarray steps
    release the GIL) and at least two shards actually miss — executes
    the misses on a thread pool, so one request uses the worker
    process's cores instead of walking shards serially.  Pure-Python
    shards stay sequential: threads would just take GIL turns.  Pool
    results are seeded back under the shard ids, warming every later
    request.  Returns ``(total, all_shards_were_cached)``.
    """
    values: list[int | None] = [
        engine.cached_count(pattern, shard, target_id=shard_id)
        for shard, shard_id in zip(shards, shard_ids)
    ]
    missing = [i for i, value in enumerate(values) if value is None]
    all_cached = not missing
    if missing:
        if processes is None:
            processes = engine.processes or os.cpu_count() or 1
        if (
            len(missing) >= 2
            and processes > 1
            and _pick_pool([shards[i] for i in missing]) == "thread"
        ):
            plan = engine.plan_for(pattern, parent_span=parent_span)
            try:
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor(
                    max_workers=min(processes, len(missing)),
                ) as executor:
                    computed = list(executor.map(
                        plan.execute, [shards[i] for i in missing],
                    ))
            except Exception:  # pragma: no cover - degrade to sequential
                computed = None
            if computed is not None:
                engine.seed_counts(
                    pattern,
                    [shards[i] for i in missing],
                    computed,
                    target_ids=[shard_ids[i] for i in missing],
                )
                for index, value in zip(missing, computed):
                    values[index] = value
                    engine._note_count_executed()
                missing = []
        for index in missing:
            values[index], _ = engine.count_detailed(
                pattern, shards[index], target_id=shard_ids[index],
                parent_span=parent_span,
            )
    return sum(values), all_cached  # type: ignore[arg-type]


def run_batch(
    engine: "HomEngine",
    patterns: Sequence[Graph],
    targets: Sequence[Graph],
    allowed: Mapping[Vertex, frozenset] | None = None,
    processes: int | None = None,
    pool: str | None = None,
) -> list[list[int]]:
    """``rows[i][j] = |Hom(patterns[i], targets[j])|`` with plan reuse.

    ``allowed`` (applied uniformly to every pair) forces the sequential
    path; ``processes > 1`` requests a worker pool for the unrestricted
    case.  ``pool`` selects the pool flavour — ``'process'``,
    ``'thread'``, or ``None`` for the kernel-aware automatic choice
    (threads when the numpy tier would serve the targets).
    """
    if pool not in (None, "process", "thread"):
        raise ValueError(f"unknown pool flavour {pool!r}")
    patterns = list(patterns)
    targets = list(targets)
    if not patterns or not targets:
        return [[] for _ in patterns]

    if (
        allowed is None
        and processes is not None
        and processes > 1
        and len(patterns) * len(targets) >= 2 * _MIN_CHUNK
    ):
        rows = _run_batch_pool(
            engine, patterns, targets, processes,
            pool or _pick_pool(targets),
        )
        if rows is not None:
            return rows

    return [
        [engine.count(pattern, target, allowed=allowed) for target in targets]
        for pattern in patterns
    ]
