"""repro.engine — batched, cached, multi-backend homomorphism counting.

The subsystem turns ad-hoc counting calls into a compile-then-execute
pipeline:

* :mod:`repro.engine.plans` — compile a pattern once into a
  :class:`CountPlan` (matrix closed form, treewidth-DP instruction tape,
  or brute force), chosen by a treewidth-aware cost model;
* :mod:`repro.engine.cache` — LRU plan/count caches behind canonical-form
  keys, with hit/miss statistics;
* :mod:`repro.engine.batch` — pattern-set × target-set evaluation with
  plan reuse and an optional ``multiprocessing`` pool;
* :mod:`repro.engine.engine` — the :class:`HomEngine` facade that
  ``repro.homs.counting`` delegates to.
"""

from repro.engine.cache import CacheStats, EngineCache, LRUCache
from repro.engine.engine import HomEngine, default_engine, set_default_engine
from repro.engine.plans import (
    BrutePlan,
    ConstantPlan,
    CountPlan,
    DPPlan,
    MatrixPlan,
    compile_dp_plan,
    compile_plan,
    select_backend,
)

__all__ = [
    "BrutePlan",
    "CacheStats",
    "ConstantPlan",
    "CountPlan",
    "DPPlan",
    "EngineCache",
    "HomEngine",
    "LRUCache",
    "MatrixPlan",
    "compile_dp_plan",
    "compile_plan",
    "default_engine",
    "select_backend",
    "set_default_engine",
]
