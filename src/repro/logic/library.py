"""A library of counting-logic sentences and the C^k equivalence tester.

Characterisation (II): ``G ≅_k G'`` iff the graphs agree on every ``C^{k+1}``
sentence.  The full sentence space is infinite; :func:`sentence_battery`
produces the standard finite probes (order, degree profile, common
neighbour profiles, triangle/substructure counts) at each width, and
:func:`ck_equivalent_on_battery` checks agreement.  The soundness direction
— a width-(k+1) sentence that separates certifies ``G ≇_k G'`` — is exact
and used in tests alongside the k-WL refinement.

Also provided: the translation of conjunctive queries to existential
first-order sentences/formulas, connecting the paper's query world to the
logic world.
"""

from __future__ import annotations

from repro.graphs.graph import Graph
from repro.logic.formulas import (
    And,
    CountExists,
    Edge,
    Equal,
    Formula,
    Not,
    Top,
    count_exists,
    exists,
)
from repro.queries.query import ConjunctiveQuery


def has_at_least_n_vertices(n: int) -> Formula:
    """``∃^{≥n} x. ⊤`` — width 1."""
    return count_exists("x", n, Top())


def has_vertex_of_degree_at_least(degree: int) -> Formula:
    """``∃x ∃^{≥d} y. E(x, y)`` — width 2."""
    return exists("x", count_exists("y", degree, Edge("x", "y")))


def num_vertices_with_degree_at_least(count: int, degree: int) -> Formula:
    """``∃^{≥count} x ∃^{≥degree} y. E(x, y)`` — width 2."""
    return count_exists(
        "x", count, count_exists("y", degree, Edge("x", "y")),
    )


def has_triangle() -> Formula:
    """``∃x∃y∃z. E(x,y) ∧ E(y,z) ∧ E(x,z)`` — width 3 (not expressible in
    C² over these pairs: the classical separator of 2K3 vs C6)."""
    return exists(
        "x",
        exists(
            "y",
            exists(
                "z",
                And(And(Edge("x", "y"), Edge("y", "z")), Edge("x", "z")),
            ),
        ),
    )


def has_path_of_length(length: int) -> Formula:
    """A walk of ``length`` edges, expressed with only two variables by
    re-quantifying alternately — the classic C² idiom."""
    if length < 1:
        raise ValueError("length must be >= 1")
    names = ["x", "y"]
    formula: Formula = Top()
    # Build inside-out: E(v_{L-1}, v_L) innermost.
    formula = Edge(names[(length - 1) % 2], names[length % 2])
    for position in range(length - 1, 0, -1):
        formula = exists(
            names[position % 2],
            And(Edge(names[(position - 1) % 2], names[position % 2]), formula),
        )
    return exists(names[0], formula)


def common_neighbour_profile(num_pairs: int, num_common: int) -> Formula:
    """``∃^{≥p} x ∃ y (x ≠ y ∧ ∃^{≥c} z (E(x,z) ∧ E(y,z)))`` — width 3,
    the logical shadow of the 2-star query."""
    inner = count_exists("z", num_common, And(Edge("x", "z"), Edge("y", "z")))
    return count_exists(
        "x", num_pairs, exists("y", And(Not(Equal("x", "y")), inner)),
    )


def sentence_battery(width: int) -> list[Formula]:
    """Finite probe sentences of variable width ≤ ``width``."""
    battery: list[Formula] = []
    for n in (1, 2, 4, 6, 8):
        battery.append(has_at_least_n_vertices(n))
    if width >= 2:
        for degree in (1, 2, 3, 4):
            battery.append(has_vertex_of_degree_at_least(degree))
        for count, degree in ((2, 2), (4, 2), (3, 3), (6, 3)):
            battery.append(num_vertices_with_degree_at_least(count, degree))
        for length in (2, 3, 4, 5):
            battery.append(has_path_of_length(length))
    if width >= 3:
        battery.append(has_triangle())
        for pairs, common in ((1, 1), (2, 1), (1, 2), (4, 2)):
            battery.append(common_neighbour_profile(pairs, common))
    for sentence in battery:
        assert sentence.width() <= width, str(sentence)
    return battery


def ck_equivalent_on_battery(first: Graph, second: Graph, width: int) -> bool:
    """Do the graphs agree on the probe battery of ``C^width`` sentences?

    Agreement is necessary for ``≅_{width-1}``; disagreement certifies
    distinguishability at that width.
    """
    return all(
        sentence.holds_in(first) == sentence.holds_in(second)
        for sentence in sentence_battery(width)
    )


def separating_sentence(
    first: Graph,
    second: Graph,
    width: int,
) -> Formula | None:
    """A battery sentence of width ≤ ``width`` with different truth values."""
    for sentence in sentence_battery(width):
        if sentence.holds_in(first) != sentence.holds_in(second):
            return sentence
    return None


def query_to_sentence(query: ConjunctiveQuery) -> Formula:
    """The Boolean shadow of a conjunctive query: ``∃ all variables :
    conjunction of atoms``.  Width = number of variables of ``H``."""
    formula: Formula = Top()
    names = {v: f"v{i}" for i, v in enumerate(query.graph.vertices())}
    atoms = [Edge(names[u], names[v]) for u, v in query.graph.edges()]
    if atoms:
        formula = atoms[0]
        for atom in atoms[1:]:
            formula = And(formula, atom)
    for v in reversed(query.graph.vertices()):
        formula = CountExists(names[v], 1, formula)
    return formula
