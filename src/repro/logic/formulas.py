"""First-order logic with counting quantifiers (characterisation (II)).

``G ≅_k G'`` iff no sentence of ``C^{k+1}`` — first-order logic with
counting quantifiers ``∃^{≥m} x`` using at most ``k + 1`` variables —
distinguishes the graphs (Immerman–Lander / Cai–Fürer–Immerman).

The AST supports the full fragment over the edge relation:

* atoms ``E(x, y)`` and ``x = y``;
* boolean connectives ``¬, ∧, ∨``;
* counting quantifiers ``∃^{≥m} x. φ`` (plain ``∃`` is ``m = 1``; ``∀`` is
  derived).

Variables are *names*, and the variable **width** of a formula is the
number of distinct names — re-quantifying a name does not cost a fresh
variable, matching the logic's definition.  Evaluation is the direct
semantics, exponential in the quantifier depth but exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.graphs.graph import Graph, Vertex


class Formula:
    """Base class; subclasses are immutable dataclasses."""

    def evaluate(self, graph: Graph, assignment: Mapping[str, Vertex]) -> bool:
        raise NotImplementedError

    def variables(self) -> frozenset:
        """All variable names occurring (free or bound)."""
        raise NotImplementedError

    def free_variables(self) -> frozenset:
        raise NotImplementedError

    def width(self) -> int:
        """Number of distinct variable names — the ``k`` of ``C^k``."""
        return len(self.variables())

    def holds_in(self, graph: Graph) -> bool:
        """Evaluate a sentence (no free variables)."""
        free = self.free_variables()
        if free:
            raise ValueError(f"not a sentence; free variables {sorted(free)}")
        return self.evaluate(graph, {})

    # connective sugar -------------------------------------------------
    def __and__(self, other: "Formula") -> "Formula":
        return And(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return Or(self, other)

    def __invert__(self) -> "Formula":
        return Not(self)


@dataclass(frozen=True)
class Edge(Formula):
    """``E(left, right)``."""

    left: str
    right: str

    def evaluate(self, graph: Graph, assignment: Mapping[str, Vertex]) -> bool:
        return graph.has_edge(assignment[self.left], assignment[self.right])

    def variables(self) -> frozenset:
        return frozenset({self.left, self.right})

    def free_variables(self) -> frozenset:
        return self.variables()

    def __str__(self) -> str:
        return f"E({self.left}, {self.right})"


@dataclass(frozen=True)
class Equal(Formula):
    """``left = right``."""

    left: str
    right: str

    def evaluate(self, graph: Graph, assignment: Mapping[str, Vertex]) -> bool:
        return assignment[self.left] == assignment[self.right]

    def variables(self) -> frozenset:
        return frozenset({self.left, self.right})

    def free_variables(self) -> frozenset:
        return self.variables()

    def __str__(self) -> str:
        return f"({self.left} = {self.right})"


@dataclass(frozen=True)
class Top(Formula):
    """The always-true formula."""

    def evaluate(self, graph: Graph, assignment: Mapping[str, Vertex]) -> bool:
        return True

    def variables(self) -> frozenset:
        return frozenset()

    def free_variables(self) -> frozenset:
        return frozenset()

    def __str__(self) -> str:
        return "⊤"


@dataclass(frozen=True)
class Not(Formula):
    operand: Formula

    def evaluate(self, graph: Graph, assignment: Mapping[str, Vertex]) -> bool:
        return not self.operand.evaluate(graph, assignment)

    def variables(self) -> frozenset:
        return self.operand.variables()

    def free_variables(self) -> frozenset:
        return self.operand.free_variables()

    def __str__(self) -> str:
        return f"¬{self.operand}"


@dataclass(frozen=True)
class And(Formula):
    left: Formula
    right: Formula

    def evaluate(self, graph: Graph, assignment: Mapping[str, Vertex]) -> bool:
        return self.left.evaluate(graph, assignment) and self.right.evaluate(
            graph, assignment,
        )

    def variables(self) -> frozenset:
        return self.left.variables() | self.right.variables()

    def free_variables(self) -> frozenset:
        return self.left.free_variables() | self.right.free_variables()

    def __str__(self) -> str:
        return f"({self.left} ∧ {self.right})"


@dataclass(frozen=True)
class Or(Formula):
    left: Formula
    right: Formula

    def evaluate(self, graph: Graph, assignment: Mapping[str, Vertex]) -> bool:
        return self.left.evaluate(graph, assignment) or self.right.evaluate(
            graph, assignment,
        )

    def variables(self) -> frozenset:
        return self.left.variables() | self.right.variables()

    def free_variables(self) -> frozenset:
        return self.left.free_variables() | self.right.free_variables()

    def __str__(self) -> str:
        return f"({self.left} ∨ {self.right})"


@dataclass(frozen=True)
class CountExists(Formula):
    """``∃^{≥ threshold} variable. body``."""

    variable: str
    threshold: int
    body: Formula

    def __post_init__(self) -> None:
        if self.threshold < 1:
            raise ValueError("counting threshold must be >= 1")

    def evaluate(self, graph: Graph, assignment: Mapping[str, Vertex]) -> bool:
        satisfied = 0
        extended = dict(assignment)
        for vertex in graph.vertices():
            extended[self.variable] = vertex
            if self.body.evaluate(graph, extended):
                satisfied += 1
                if satisfied >= self.threshold:
                    return True
        return False

    def variables(self) -> frozenset:
        return self.body.variables() | {self.variable}

    def free_variables(self) -> frozenset:
        return self.body.free_variables() - {self.variable}

    def __str__(self) -> str:
        marker = "" if self.threshold == 1 else f"^≥{self.threshold}"
        return f"∃{marker}{self.variable}. {self.body}"


def exists(variable: str, body: Formula) -> Formula:
    """Plain existential quantifier: ``∃^{≥1}``."""
    return CountExists(variable, 1, body)


def count_exists(variable: str, threshold: int, body: Formula) -> Formula:
    return CountExists(variable, threshold, body)


def forall(variable: str, body: Formula) -> Formula:
    """``∀x. φ ≡ ¬∃x. ¬φ`` — costs no extra variable."""
    return Not(CountExists(variable, 1, Not(body)))


def exact_count(variable: str, count: int, body: Formula) -> Formula:
    """``∃^{=count} x. φ`` as ``∃^{≥count} ∧ ¬∃^{≥count+1}`` (``count ≥ 0``)."""
    if count < 0:
        raise ValueError("count must be non-negative")
    upper = Not(CountExists(variable, count + 1, body))
    if count == 0:
        return upper
    return And(CountExists(variable, count, body), upper)
