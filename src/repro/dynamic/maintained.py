"""Maintained counts: handles that stay current across target versions.

:class:`MaintainedCount` subscribes a ``(pattern, DynamicGraph)`` pair.
On every :meth:`~repro.dynamic.graph.DynamicGraph.apply` it refreshes its
value — through the incremental delta path
(:mod:`repro.dynamic.delta`) when the cost model favours it, through a
full engine recompute (cached under the new version's ``target_id``)
otherwise — and records per-version provenance so
:meth:`~repro.dynamic.graph.DynamicGraph.rollback` restores the previous
value without computing anything.

Patterns are factored into connected components first:
``|Hom(H, G)| = |V(G)|^{iso(H)} · Π_c |Hom(H_c, G)|`` for the
multi-vertex components ``H_c``.  This makes disconnected patterns exact
under the edge-wise delta (an isolated pattern vertex sees vertex-count
changes, which no edge delta would), lets isomorphic components share
engine plans and counts, and is also the decomposition the service's
component shards rely on.

:class:`MaintainedAnswerCount` lifts the same machinery to conjunctive
queries via Lemma 22: the answer count is recovered from the power sums
``p_ℓ = |Hom(F_ℓ(H, X), G)|``, each of which is an ordinary maintained
homomorphism count of the ℓ-copy pattern.  Full queries collapse to one
maintained count, Boolean queries to a threshold on one.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Literal

from repro.dynamic.delta import (
    DeltaPlan,
    batch_delta,
    compile_delta_plan,
    estimate_delta_cost,
    estimate_recompute_cost,
)
from repro.dynamic.graph import DynamicGraph, GraphVersion
from repro.errors import UpdateError
from repro.graphs.graph import Graph
from repro.obs import registry as _metrics_registry, span

Mode = Literal["auto", "delta", "recompute"]

# repro_dynamic_refreshes_total children, memoised per refresh method.
_refresh_children: dict[str, object] = {}


def _count_refresh(method: str) -> None:
    child = _refresh_children.get(method)
    if child is None:
        family = _metrics_registry().counter(
            "repro_dynamic_refreshes_total",
            "Maintained-count refreshes, split by delta vs full recompute.",
            labelnames=("method",),
        )
        child = family.labels(method=method)
        _refresh_children[method] = child
    child.inc()

# Per-handle provenance is a ring buffer: enough history to audit
# recent refreshes, bounded for long-running streams.
PROVENANCE_LIMIT = 1024

_UNCOMPILED = object()


class _Component:
    """One multi-vertex connected component of a maintained pattern."""

    __slots__ = ("graph", "_delta_plan")

    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._delta_plan: DeltaPlan | None | object = _UNCOMPILED

    def delta_plan(self) -> DeltaPlan | None:
        plan = self._delta_plan
        if plan is _UNCOMPILED:
            plan = compile_delta_plan(self.graph.to_indexed())
            self._delta_plan = plan
        return plan


class MaintainedCount:
    """``|Hom(pattern, ·)|`` kept current over a :class:`DynamicGraph`.

    ``mode`` selects the refresh policy: ``'auto'`` applies the delta
    path when it is structurally possible (no target vertex removals,
    pattern small enough to compile) *and* the cost model favours it;
    ``'delta'`` skips the cost model; ``'recompute'`` always recounts
    through the engine.  All three agree on values — the property suite
    asserts it.
    """

    kind = "hom-count"

    def __init__(
        self,
        pattern: Graph,
        dynamic: DynamicGraph,
        engine=None,
        mode: Mode = "auto",
    ) -> None:
        if engine is None:
            from repro.engine import default_engine

            engine = default_engine()
        if mode not in ("auto", "delta", "recompute"):
            raise UpdateError(f"unknown maintenance mode {mode!r}")
        self.pattern = pattern.copy()
        self.dynamic = dynamic
        self.engine = engine
        self.mode = mode
        indexed = self.pattern.to_indexed()
        labels = indexed.codec.labels
        components = indexed.connected_components()
        self.isolated_vertices = sum(1 for c in components if len(c) == 1)
        self._components = [
            _Component(self.pattern.induced_subgraph(labels[i] for i in comp))
            for comp in components
            if len(comp) > 1
        ]
        # digest -> (version, value, per-component counts); bounded to the
        # dynamic graph's retained window so rollback is a pure lookup.
        self._history: OrderedDict[str, tuple[int, int, tuple[int, ...]]] = (
            OrderedDict()
        )
        # Bounded: a long-running update stream must not grow memory.
        self.provenance: deque[dict] = deque(maxlen=PROVENANCE_LIMIT)
        self.method = "initial"
        # Snapshot, compute, and subscribe under the stream's lock so no
        # version can slip between the initial count and the first refresh.
        with dynamic.lock:
            record = dynamic.snapshot()
            counts = self._recompute(record)
            dynamic.stats.initial_computes += 1
            self._commit(record, counts, "initial")
            dynamic.subscribe(self)

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    @property
    def value(self) -> int:
        return self._value

    @property
    def version(self) -> int:
        return self._version

    @property
    def digest(self) -> str:
        return self._digest

    def value_at(self, digest: str) -> int | None:
        """The maintained value at a retained version digest, if any."""
        entry = self._history.get(digest)
        return entry[1] if entry is not None else None

    def close(self) -> None:
        """Detach from the dynamic graph (no further refreshes)."""
        self.dynamic.unsubscribe(self)

    # ------------------------------------------------------------------
    # refresh machinery
    # ------------------------------------------------------------------
    def _compose(self, record: GraphVersion, counts: tuple[int, ...]) -> int:
        value = record.graph.num_vertices() ** self.isolated_vertices
        for count in counts:
            value *= count
        return value

    def _commit(
        self, record: GraphVersion, counts: tuple[int, ...], method: str,
    ) -> None:
        self._version = record.version
        self._digest = record.digest
        self._value = self._compose(record, counts)
        self.method = method
        self._history[record.digest] = (record.version, self._value, counts)
        self._history.move_to_end(record.digest)
        while len(self._history) > self.dynamic.history_limit + 2:
            self._history.popitem(last=False)
        self.provenance.append(
            {
                "version": record.version,
                "digest": record.digest,
                "value": self._value,
                "method": method,
            },
        )

    def _recompute(self, record: GraphVersion) -> tuple[int, ...]:
        return tuple(
            self.engine.count(
                component.graph, record.graph, target_id=record.target_id,
            )
            for component in self._components
        )

    def _delta_counts(
        self,
        old: GraphVersion,
        new: GraphVersion,
        old_counts: tuple[int, ...],
        plans: list[DeltaPlan],
    ) -> tuple[int, ...]:
        encode = new.indexed.codec.encode
        removed = [
            (encode(u), encode(v)) for u, v in new.net_removed_edges
        ]
        added = [(encode(u), encode(v)) for u, v in new.net_added_edges]
        bitsets = list(old.indexed.bitsets())
        bitsets.extend([0] * (new.indexed.n - old.indexed.n))
        deltas = batch_delta(plans, bitsets, removed, added)
        return tuple(
            count + delta for count, delta in zip(old_counts, deltas)
        )

    def _on_apply(self, old: GraphVersion, new: GraphVersion) -> None:
        stats = self.dynamic.stats
        previous = self._history.get(old.digest)
        plans: list[DeltaPlan] = []
        use_delta = self.mode != "recompute" and previous is not None
        if use_delta and new.net_removed_vertices:
            use_delta = False  # index space shifted: patch invariant broken
        if use_delta:
            for component in self._components:
                plan = component.delta_plan()
                if plan is None:
                    use_delta = False
                    break
                plans.append(plan)
        if use_delta and self.mode == "auto" and self._components:
            graph = new.graph
            n = graph.num_vertices()
            average_degree = 2 * graph.num_edges() / n if n else 0.0
            changed = len(new.net_added_edges) + len(new.net_removed_edges)
            delta_cost = estimate_delta_cost(plans, changed, average_degree)
            recompute_cost = sum(
                estimate_recompute_cost(
                    self.engine.plan_for(component.graph), n, average_degree,
                )
                for component in self._components
            )
            if delta_cost > recompute_cost:
                use_delta = False
        if use_delta:
            with span("dynamic.refresh", method="delta"):
                counts = self._delta_counts(old, new, previous[2], plans)
            stats.deltas_applied += 1
            _count_refresh("delta")
            self._commit(new, counts, "delta")
        else:
            with span("dynamic.refresh", method="recompute"):
                counts = self._recompute(new)
            stats.delta_fallbacks += 1
            _count_refresh("recompute")
            self._commit(new, counts, "recompute")

    def _on_rollback(self, dropped: GraphVersion, restored: GraphVersion) -> None:
        entry = self._history.get(restored.digest)
        if entry is not None:
            _, _, counts = entry
            self._commit(restored, counts, "rollback")
        else:
            counts = self._recompute(restored)
            self.dynamic.stats.delta_fallbacks += 1
            self._commit(restored, counts, "recompute")

    def summary(self) -> dict:
        return {
            "kind": self.kind,
            "pattern": {
                "vertices": self.pattern.num_vertices(),
                "edges": self.pattern.num_edges(),
            },
            "version": self.version,
            "value": self.value,
            "method": self.method,
        }

    def __repr__(self) -> str:
        return (
            f"MaintainedCount(pattern=n{self.pattern.num_vertices()}"
            f"m{self.pattern.num_edges()}, version={self.version}, "
            f"value={self.value})"
        )


class MaintainedAnswerCount:
    """``|Ans((H, X), ·)|`` kept current over a :class:`DynamicGraph`.

    Non-trivial queries ride Lemma 22: the power sums
    ``p_ℓ = |Hom(F_ℓ(H, X), G)|`` are maintained homomorphism counts (one
    :class:`MaintainedCount` per ℓ, created on demand and incremental
    from then on) and the answer count is exact rational interpolation
    over them — evaluated lazily per version and cached, so rollback is a
    lookup.  Full queries are a single maintained count; Boolean queries
    threshold one.
    """

    kind = "answer-count"

    def __init__(
        self,
        query,
        dynamic: DynamicGraph,
        engine=None,
        mode: Mode = "auto",
    ) -> None:
        if engine is None:
            from repro.engine import default_engine

            engine = default_engine()
        self.query = query
        self.dynamic = dynamic
        self.engine = engine
        self.mode = mode
        self._direct: MaintainedCount | None = None
        self._ell_counts: dict[int, MaintainedCount] = {}
        self._values: OrderedDict[str, tuple[int, int]] = OrderedDict()
        self.provenance: deque[dict] = deque(maxlen=PROVENANCE_LIMIT)
        if query.is_full() or not query.free_variables:
            self._direct = MaintainedCount(
                query.graph, dynamic, engine=engine, mode=mode,
            )
        _ = self.value  # compute (and record) the initial answer count

    # ------------------------------------------------------------------
    @property
    def version(self) -> int:
        return self.dynamic.version

    @property
    def value(self) -> int:
        """The answer count at the dynamic graph's current version.

        Evaluated under the stream's lock: the version snapshot and the
        maintained power sums it interpolates are read atomically.
        """
        with self.dynamic.lock:
            record = self.dynamic.snapshot()
            cached = self._values.get(record.digest)
            if cached is not None:
                return cached[1]
            if self._direct is not None:
                homs = self._direct.value
                if self.query.is_full():
                    result = homs
                else:  # Boolean: one (empty) answer iff a hom exists
                    result = 1 if homs > 0 else 0
            else:
                from repro.queries.answers import (
                    count_answers_from_power_sums,
                )

                result = count_answers_from_power_sums(self._power_sum)
            self._values[record.digest] = (record.version, result)
            self._values.move_to_end(record.digest)
            while len(self._values) > self.dynamic.history_limit + 2:
                self._values.popitem(last=False)
            self.provenance.append(
                {
                    "version": record.version,
                    "digest": record.digest,
                    "value": result,
                },
            )
            return result

    def _power_sum(self, ell: int) -> int:
        maintained = self._ell_counts.get(ell)
        if maintained is None:
            from repro.queries.extension import ell_copy

            pattern, _ = ell_copy(self.query, ell)
            maintained = MaintainedCount(
                pattern, self.dynamic, engine=self.engine, mode=self.mode,
            )
            self._ell_counts[ell] = maintained
        return maintained.value

    @property
    def power_sums_maintained(self) -> int:
        """How many ℓ-copy hom counts are currently maintained."""
        return len(self._ell_counts)

    def close(self) -> None:
        if self._direct is not None:
            self._direct.close()
        for maintained in self._ell_counts.values():
            maintained.close()

    def summary(self) -> dict:
        from repro.queries.parser import format_query

        return {
            "kind": self.kind,
            "query": format_query(self.query, style="logic"),
            "version": self.version,
            "value": self.value,
            "power_sums": self.power_sums_maintained,
        }

    def __repr__(self) -> str:
        return (
            f"MaintainedAnswerCount(version={self.version}, "
            f"value={self.value})"
        )
