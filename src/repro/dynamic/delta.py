"""Delta counting: maintain ``|Hom(H, G)|`` under single-edge target steps.

For a one-edge change the count moves by exactly the number of
homomorphisms whose image *touches* the changed edge:

* inserting ``e``:  ``|Hom(H, G + e)| − |Hom(H, G)| = T(H, G + e, e)``
* deleting ``e``:   ``|Hom(H, G − e)| − |Hom(H, G)| = −T(H, G, e)``

where ``T(H, G, e)`` counts homomorphisms mapping at least one pattern
edge onto ``e`` (both identities are the same set counted on the side of
the graph that contains ``e``).  A batch ``ΔE`` telescopes into ``|ΔE|``
such single-edge steps — deletions first, then insertions — so batch
overlaps (a homomorphism touching several changed edges) are never double
counted: each step counts against the *intermediate* graph.

``T`` itself is inclusion–exclusion over the pattern edges pinned onto
``e = {x, y}``: for every nonempty subset ``S ⊆ E(H)`` and every proper
2-colouring ``φ`` of ``(V(S), S)`` (the homomorphisms ``S → e``),

    T(H, G, e) = Σ_S (−1)^{|S|+1} Σ_φ #extensions of φ to Hom(H, G).

Everything pattern-side is compiled **once** per pattern component
(:func:`compile_delta_plan`): subsets are enumerated, colourings merged
by the vertex assignment they induce (signs cancel aggressively), and
each surviving term gets a precompiled pinned search order.  Executing a
term is then a tiny bitset backtracking over the *residual* pattern —
typically two pattern vertices are pinned onto ``{x, y}`` and the few
remaining ones enumerate over neighbourhood-bitset intersections, so the
per-step cost scales with local degrees, not with ``|V(G)|``.

Patterns here are single connected components
(:class:`~repro.dynamic.maintained.MaintainedCount` factors its pattern
first); disconnected patterns multiply per-component counts, which is
also what makes isolated-vertex bookkeeping exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Sequence

from repro.graphs.indexed import IndexedGraph

# 2^MAX_DELTA_EDGES subsets are enumerated at compile time; larger
# patterns always fall back to full recompute (they are rare as counting
# patterns and their recompute cost dwarfs the per-edge delta anyway).
MAX_DELTA_EDGES = 10

_FIXED = 0  # pinned ref into the {x, y} pair
_EARLIER = 1  # pinned ref to an earlier search position


@dataclass(frozen=True)
class DeltaTerm:
    """One merged inclusion–exclusion term with its compiled search.

    ``fixed`` maps pattern indices to a *side* of the changed edge (0 → x,
    1 → y); ``order`` is the search order of the free pattern vertices;
    ``pinned[i]`` lists, for position ``i``, the already-resolved
    neighbour references whose target bitsets constrain the pool.
    """

    coefficient: int
    fixed: tuple[tuple[int, int], ...]
    order: tuple[int, ...]
    pinned: tuple[tuple[tuple[int, int], ...], ...]


@dataclass(frozen=True)
class DeltaPlan:
    """The compiled delta counter for one connected pattern component."""

    pattern: IndexedGraph
    terms: tuple[DeltaTerm, ...]

    def describe(self) -> str:
        return (
            f"delta(n={self.pattern.n}, m={self.pattern.num_edges()}, "
            f"terms={len(self.terms)})"
        )


def _proper_two_colourings(vertices: set, edges: Sequence[tuple[int, int]]):
    """All maps ``V → {0, 1}`` sending every edge onto {0, 1} properly,
    or ``None`` when an odd cycle makes them impossible."""
    adjacency: dict[int, list[int]] = {v: [] for v in vertices}
    for u, v in edges:
        adjacency[u].append(v)
        adjacency[v].append(u)
    colour: dict[int, int] = {}
    parts: list[list[int]] = []
    for root in sorted(vertices):
        if root in colour:
            continue
        colour[root] = 0
        part = [root]
        stack = [root]
        while stack:
            current = stack.pop()
            for neighbour in adjacency[current]:
                if neighbour not in colour:
                    colour[neighbour] = colour[current] ^ 1
                    part.append(neighbour)
                    stack.append(neighbour)
                elif colour[neighbour] == colour[current]:
                    return None
        parts.append(part)
    colourings = []
    for flips in product((0, 1), repeat=len(parts)):
        assignment = {}
        for part, flip in zip(parts, flips):
            for vertex in part:
                assignment[vertex] = colour[vertex] ^ flip
        colourings.append(assignment)
    return colourings


def _pinned_search_order(
    adjacency: Sequence[Sequence[int]], assigned: set[int], n: int,
) -> list[int]:
    """Search order over the free vertices: stay connected to the
    assigned region, fail-first on high degree (mirrors the brute-force
    backtracker's order, minus the label boundary)."""
    remaining = {v for v in range(n) if v not in assigned}
    frontier = {
        v: sum(1 for u in adjacency[v] if u in assigned) for v in remaining
    }
    order: list[int] = []
    while remaining:
        vertex = max(
            remaining, key=lambda v: (frontier[v], len(adjacency[v]), v),
        )
        order.append(vertex)
        remaining.remove(vertex)
        for u in adjacency[vertex]:
            if u in remaining:
                frontier[u] += 1
    return order


def compile_delta_plan(pattern: IndexedGraph) -> DeltaPlan | None:
    """Compile the inclusion–exclusion terms for a *connected* pattern.

    Returns ``None`` when the pattern has no edges (a single vertex — the
    caller tracks those via ``|V(G)|``) or too many for the subset
    enumeration (``> MAX_DELTA_EDGES`` — the caller falls back to full
    recompute).
    """
    edges = list(pattern.edges())
    m = len(edges)
    if m == 0 or m > MAX_DELTA_EDGES:
        return None
    adjacency = pattern.adjacency_lists()

    coefficients: dict[tuple[tuple[int, int], ...], int] = {}
    for mask in range(1, 1 << m):
        subset = [edges[i] for i in range(m) if (mask >> i) & 1]
        vertices = {u for edge in subset for u in edge}
        colourings = _proper_two_colourings(vertices, subset)
        if colourings is None:
            continue
        sign = 1 if mask.bit_count() % 2 == 1 else -1
        for assignment in colourings:
            key = tuple(sorted(assignment.items()))
            coefficients[key] = coefficients.get(key, 0) + sign

    terms: list[DeltaTerm] = []
    for key, coefficient in sorted(coefficients.items()):
        if coefficient == 0:
            continue
        assignment = dict(key)
        # A pattern edge whose endpoints both pin to the same side would
        # need a self-loop in the target: the term is identically zero.
        if any(
            u in assignment and assignment[u] == side
            for vertex, side in key
            for u in adjacency[vertex]
        ):
            continue
        order = _pinned_search_order(adjacency, set(assignment), pattern.n)
        placed: dict[int, int] = {}
        pinned: list[tuple[tuple[int, int], ...]] = []
        for position, vertex in enumerate(order):
            refs: list[tuple[int, int]] = []
            for u in adjacency[vertex]:
                if u in assignment:
                    refs.append((_FIXED, assignment[u]))
                elif u in placed:
                    refs.append((_EARLIER, placed[u]))
            pinned.append(tuple(refs))
            placed[vertex] = position
        terms.append(
            DeltaTerm(
                coefficient=coefficient,
                fixed=key,
                order=tuple(order),
                pinned=tuple(pinned),
            ),
        )
    return DeltaPlan(pattern=pattern, terms=tuple(terms))


def execute_term(
    term: DeltaTerm, bitsets: Sequence[int], x: int, y: int,
) -> int:
    """Extensions of the term's pinned assignment (sides resolved to the
    concrete endpoints ``x``/``y``) to full homomorphisms — pure bitset
    backtracking, no dicts, no labels."""
    endpoints = (x, y)
    order, pinned = term.order, term.pinned
    depth = len(order)
    if depth == 0:
        return 1
    images = [0] * depth

    def count_from(position: int) -> int:
        refs = pinned[position]
        kind, value = refs[0]
        pool = bitsets[endpoints[value] if kind == _FIXED else images[value]]
        for kind, value in refs[1:]:
            pool &= bitsets[endpoints[value] if kind == _FIXED else images[value]]
        if position == depth - 1:
            return pool.bit_count()
        total = 0
        while pool:
            low_bit = pool & -pool
            pool ^= low_bit
            images[position] = low_bit.bit_length() - 1
            total += count_from(position + 1)
        return total

    return count_from(0)


def homs_touching_edge(
    plan: DeltaPlan, bitsets: Sequence[int], x: int, y: int,
) -> int:
    """``T(H, G, {x, y})``: homomorphisms of the (connected) pattern into
    the graph described by ``bitsets`` whose image uses edge ``{x, y}``
    (which must be present in ``bitsets``)."""
    return sum(
        term.coefficient * execute_term(term, bitsets, x, y)
        for term in plan.terms
    )


def batch_delta(
    plans: Sequence[DeltaPlan],
    bitsets: list[int],
    removed: Sequence[tuple[int, int]],
    added: Sequence[tuple[int, int]],
) -> list[int]:
    """Telescoped count changes for several pattern components at once.

    ``bitsets`` is the *old* version's neighbourhood bitsets extended to
    the new index space; it is mutated in place and ends as the new
    version's bitsets, so one replay of the intermediate graphs serves
    every plan.  Deletions are counted before the bit is cleared (the
    edge must be present for ``T``), insertions after the bit is set.
    """
    deltas = [0] * len(plans)
    for x, y in removed:
        for i, plan in enumerate(plans):
            deltas[i] -= homs_touching_edge(plan, bitsets, x, y)
        bitsets[x] &= ~(1 << y)
        bitsets[y] &= ~(1 << x)
    for x, y in added:
        bitsets[x] |= 1 << y
        bitsets[y] |= 1 << x
        for i, plan in enumerate(plans):
            deltas[i] += homs_touching_edge(plan, bitsets, x, y)
    return deltas


# ----------------------------------------------------------------------
# cost model
# ----------------------------------------------------------------------
def estimate_delta_cost(
    plans: Sequence[DeltaPlan], changed_edges: int, average_degree: float,
) -> float:
    """Rough work estimate for one batch through the delta path: per
    changed edge, each term explores about ``deg^free`` states."""
    degree = max(1.0, average_degree)
    per_edge = 0.0
    for plan in plans:
        for term in plan.terms:
            per_edge += degree ** len(term.order)
    return changed_edges * per_edge


def estimate_recompute_cost(count_plan, n: int, average_degree: float) -> float:
    """Rough work estimate for one full recompute through an engine plan.

    Order-of-magnitude only (the numpy matrix path gets a constant-factor
    discount for its C inner loops); the property suite guarantees both
    paths agree, so a misestimate costs time, never correctness.
    """
    degree = max(1.0, average_degree)
    size = max(1.0, float(n))
    kind = getattr(count_plan, "kind", "brute")
    if kind == "matrix":
        return size ** 3 / 64.0
    if kind == "dp":
        width = getattr(count_plan, "width", 1)
        nodes = getattr(count_plan, "node_count", 1)
        return nodes * size * degree ** width
    if kind == "brute":
        vertices = count_plan.pattern.num_vertices()
        return size * degree ** max(vertices - 1, 0)
    return 1.0
