"""repro.dynamic — incremental maintenance over mutating targets.

The static pipeline treats targets as frozen values; this subsystem makes
them *streams of versions* while keeping every count exact:

* :mod:`repro.dynamic.graph` — :class:`DynamicGraph`: batched updates,
  immutable per-version snapshots, incremental CSR/bitset index patching
  (vertex removals recompile), rolling content digests that serve as
  version-aware engine cache keys, journal + rollback;
* :mod:`repro.dynamic.delta` — exact count deltas by telescoping
  single-edge steps and inclusion–exclusion over pattern edges pinned
  onto the changed target edge, executed as tiny pinned bitset searches;
* :mod:`repro.dynamic.maintained` — :class:`MaintainedCount` /
  :class:`MaintainedAnswerCount` handles that subscribe a pattern or CQ
  to a dynamic target and stay current across versions (answer counts
  interpolate over maintained power sums, Lemma 22);
* :mod:`repro.dynamic.kg` — :class:`DynamicKnowledgeGraph` with an
  incrementally patched gadget encoding and
  :class:`MaintainedKgAnswerCount` (version-cached engine recomputes).
"""

from repro.dynamic.delta import (
    DeltaPlan,
    batch_delta,
    compile_delta_plan,
    homs_touching_edge,
)
from repro.dynamic.graph import (
    DynamicGraph,
    DynamicStats,
    GraphVersion,
    UpdateBatch,
    patch_indexed,
)
from repro.dynamic.kg import (
    DynamicKnowledgeGraph,
    KgVersion,
    MaintainedKgAnswerCount,
)
from repro.dynamic.maintained import MaintainedAnswerCount, MaintainedCount

__all__ = [
    "DeltaPlan",
    "DynamicGraph",
    "DynamicKnowledgeGraph",
    "DynamicStats",
    "GraphVersion",
    "KgVersion",
    "MaintainedAnswerCount",
    "MaintainedCount",
    "MaintainedKgAnswerCount",
    "UpdateBatch",
    "batch_delta",
    "compile_delta_plan",
    "homs_touching_edge",
    "patch_indexed",
]
