"""Dynamic knowledge graphs: versioned triples with maintained answers.

A knowledge graph reaches the engine through its gadget encoding
(:mod:`repro.kg.engine_bridge`): each triple ``(s, l, t)`` becomes a path
``s — a — b — t`` in a plain target graph, with ``allowed`` pools
enforcing labels.  :class:`DynamicKnowledgeGraph` keeps that encoding
live under updates by driving a :class:`~repro.dynamic.graph.DynamicGraph`
over the gadget graph:

* **adding** a triple appends two fresh midpoints and three edges — a
  pure index *patch* (the append-heavy / streaming-KG case never
  recompiles);
* **removing** a triple deletes its midpoints, which shrinks the index
  space and recompiles (reported honestly in the shared
  :class:`~repro.dynamic.graph.DynamicStats`);
* label pools are versioned alongside, so each version exposes a
  complete :class:`~repro.kg.engine_bridge.KgEncoding`.

:class:`MaintainedKgAnswerCount` keeps ``|Ans((P, X), ·)|`` current.  KG
answer counting is a *threshold* over per-assignment extension counts —
not a linear functional of homomorphism counts — so it cannot ride the
edge-delta path; instead every refresh recomputes through the engine
with the version's ``target_id``, which makes the underlying restricted
counts cacheable per version: repeated versions (and rollback) are pure
cache hits.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Iterable

from repro.dynamic.graph import (
    DEFAULT_HISTORY_LIMIT,
    DynamicGraph,
    DynamicStats,
    GraphVersion,
    UpdateBatch,
)
from repro.dynamic.maintained import PROVENANCE_LIMIT
from repro.errors import UpdateError
from repro.kg.engine_bridge import KgEncoding, count_kg_answers_engine
from repro.kg.kgraph import KnowledgeGraph

_EMPTY: frozenset = frozenset()


def _copy_kg(kg: KnowledgeGraph) -> KnowledgeGraph:
    return KnowledgeGraph(
        vertices={v: kg.vertex_label(v) for v in kg.vertices()},
        triples=kg.triples(),
    )


@dataclass(frozen=True)
class KgVersion:
    """One immutable version of a dynamic knowledge graph.

    ``net_*`` fields describe the change from the previous version in
    *triple/vertex* terms — the gadget-level bookkeeping stays inside
    ``graph_record``.
    """

    version: int
    kg: KnowledgeGraph
    encoding: KgEncoding
    graph_record: GraphVersion
    net_added_triples: tuple = ()
    net_removed_triples: tuple = ()
    net_added_vertices: tuple = ()

    @property
    def digest(self) -> str:
        return self.graph_record.digest

    @property
    def target_id(self) -> tuple:
        return self.graph_record.target_id

    @property
    def patched(self) -> bool:
        return self.graph_record.patched

    def applied_summary(self) -> dict[str, int]:
        return {
            "triples_added": len(self.net_added_triples),
            "triples_removed": len(self.net_removed_triples),
            "vertices_added": len(self.net_added_vertices),
        }


class DynamicKnowledgeGraph:
    """A versioned knowledge graph with an incrementally patched gadget
    encoding and subscription support."""

    def __init__(
        self,
        kg: KnowledgeGraph,
        history_limit: int = DEFAULT_HISTORY_LIMIT,
    ) -> None:
        from repro.kg.engine_bridge import encode_kg

        base = _copy_kg(kg)
        encoding = encode_kg(base)
        self._stream = DynamicGraph(encoding.graph, history_limit=history_limit)
        # The stream copied the gadget graph; re-point the encoding at the
        # stream's own version-0 graph so engine counts see the (warm,
        # adopt_indexed-patched) per-version values.
        root = KgVersion(
            version=0,
            kg=base,
            encoding=KgEncoding(
                kg=base,
                graph=self._stream.graph,
                vertex_pools=dict(encoding.vertex_pools),
                all_vertices=encoding.all_vertices,
                head_pools=dict(encoding.head_pools),
                tail_pools=dict(encoding.tail_pools),
            ),
            graph_record=self._stream.snapshot(),
        )
        self._versions: list[KgVersion] = [root]
        self._handles: list = []

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    @property
    def stats(self) -> DynamicStats:
        return self._stream.stats

    @property
    def history_limit(self) -> int:
        return self._stream.history_limit

    @property
    def lock(self):
        return self._stream.lock

    @property
    def version(self) -> int:
        return self._versions[-1].version

    @property
    def kg(self) -> KnowledgeGraph:
        return self._versions[-1].kg

    @property
    def encoding(self) -> KgEncoding:
        return self._versions[-1].encoding

    @property
    def digest(self) -> str:
        return self._versions[-1].digest

    @property
    def target_id(self) -> tuple:
        return self._versions[-1].target_id

    @property
    def journal(self):
        return self._stream.journal

    def journal_info(self) -> dict:
        """Journal occupancy of the underlying stream (health layer)."""
        return self._stream.journal_info()

    def snapshot(self) -> KgVersion:
        with self.lock:
            return self._versions[-1]

    def subscribe(self, handle) -> None:
        with self.lock:
            if handle not in self._handles:
                self._handles.append(handle)

    def unsubscribe(self, handle) -> None:
        with self.lock:
            if handle in self._handles:
                self._handles.remove(handle)

    @property
    def handles(self) -> tuple:
        with self.lock:
            return tuple(self._handles)

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def apply(
        self,
        add_vertices: Iterable = (),
        add_triples: Iterable[tuple] = (),
        remove_triples: Iterable[tuple] = (),
    ) -> KgVersion:
        """Apply one batch of KG updates, producing the next version.

        ``add_vertices`` entries are ``(name, label)`` pairs or bare
        names; triple endpoints are added (unlabelled) as needed, exactly
        like :meth:`KnowledgeGraph.add_edge`.
        """
        with self.lock:
            old = self._versions[-1]
            new_kg = _copy_kg(old.kg)
            for entry in add_vertices:
                if isinstance(entry, tuple) and len(entry) == 2:
                    new_kg.add_vertex(entry[0], entry[1])
                else:
                    new_kg.add_vertex(entry)
            for source, label, target in add_triples:
                new_kg.add_edge(source, label, target)
            removed = []
            for source, label, target in remove_triples:
                if not new_kg.has_edge(source, label, target):
                    raise UpdateError(
                        f"triple ({source!r}, {label!r}, {target!r}) "
                        "not in knowledge graph",
                    )
                removed.append((source, label, target))
            if removed:
                keep = set(removed)
                new_kg = KnowledgeGraph(
                    vertices={
                        v: new_kg.vertex_label(v) for v in new_kg.vertices()
                    },
                    triples=[
                        t for t in new_kg.triples() if t not in keep
                    ],
                )

            # Translate the *net* effect to a gadget-graph batch: a triple
            # added and removed in the same batch never had gadget
            # midpoints, so only removals of previously existing triples
            # reach the stream (same no-op contract as UpdateBatch).
            old_names = set(old.kg.vertices())
            gadget_add_vertices = [
                ("v", name)
                for name in new_kg.vertices()
                if name not in old_names
            ]
            net_added_triples = []
            gadget_add_edges = []
            for source, label, target in new_kg.triples():
                if old.kg.has_edge(source, label, target):
                    continue
                net_added_triples.append((source, label, target))
                head = ("a", source, label, target)
                tail = ("b", source, label, target)
                gadget_add_edges.extend(
                    [
                        (("v", source), head),
                        (head, tail),
                        (tail, ("v", target)),
                    ],
                )
            net_removed_triples = [
                triple for triple in removed if old.kg.has_edge(*triple)
            ]
            gadget_remove_vertices = []
            for source, label, target in net_removed_triples:
                gadget_remove_vertices.append(("a", source, label, target))
                gadget_remove_vertices.append(("b", source, label, target))

            record = self._stream.apply(
                UpdateBatch.build(
                    add_vertices=gadget_add_vertices,
                    add_edges=gadget_add_edges,
                    remove_vertices=gadget_remove_vertices,
                ),
            )

            version = KgVersion(
                version=old.version + 1,
                kg=new_kg,
                encoding=self._rebuild_pools(old.encoding, new_kg, record),
                graph_record=record,
                net_added_triples=tuple(net_added_triples),
                net_removed_triples=tuple(net_removed_triples),
                net_added_vertices=tuple(
                    name for name in new_kg.vertices() if name not in old_names
                ),
            )
            self._versions.append(version)
            if len(self._versions) > self.history_limit:
                del self._versions[0]
            for handle in list(self._handles):
                handle._on_apply(old, version)
            return version

    def _rebuild_pools(
        self,
        old_encoding: KgEncoding,
        new_kg: KnowledgeGraph,
        record: GraphVersion,
    ) -> KgEncoding:
        """Patch the label pools to the new version (only changed labels
        get a fresh frozenset)."""
        vertex_pools = dict(old_encoding.vertex_pools)
        head_pools = dict(old_encoding.head_pools)
        tail_pools = dict(old_encoding.tail_pools)
        touched_vertex_labels: set = set()
        touched_edge_labels: set = set()
        for vertex in record.net_added_vertices:
            if vertex[0] == "v":
                touched_vertex_labels.add(new_kg.vertex_label(vertex[1]))
            else:
                touched_edge_labels.add(vertex[2])
        for vertex in record.net_removed_vertices:
            # Only gadget midpoints are ever removed (triple removal).
            touched_edge_labels.add(vertex[2])
        for label in touched_vertex_labels:
            vertex_pools[label] = frozenset(
                ("v", name)
                for name in new_kg.vertices()
                if new_kg.vertex_label(name) == label
            )
        for label in touched_edge_labels:
            heads = frozenset(
                ("a", s, l, t)
                for s, l, t in new_kg.triples()
                if l == label
            )
            tails = frozenset(
                ("b", s, l, t)
                for s, l, t in new_kg.triples()
                if l == label
            )
            if heads:
                head_pools[label] = heads
                tail_pools[label] = tails
            else:
                head_pools.pop(label, None)
                tail_pools.pop(label, None)
        all_vertices = frozenset(
            encoded for pool in vertex_pools.values() for encoded in pool
        )
        return KgEncoding(
            kg=new_kg,
            graph=record.graph,
            vertex_pools=vertex_pools,
            all_vertices=all_vertices,
            head_pools=head_pools,
            tail_pools=tail_pools,
        )

    def rollback(self) -> KgVersion:
        """Revert to the previous retained version (gadget stream and
        pools together); subscribed handles restore from provenance."""
        with self.lock:
            if len(self._versions) < 2:
                raise UpdateError(
                    "no retained version to roll back to "
                    f"(history_limit={self.history_limit})",
                )
            dropped = self._versions.pop()
            self._stream.rollback()
            restored = self._versions[-1]
            for handle in list(self._handles):
                handle._on_rollback(dropped, restored)
            return restored

    def __repr__(self) -> str:
        current = self._versions[-1]
        return (
            f"DynamicKnowledgeGraph(version={current.version}, "
            f"n={current.kg.num_vertices()}, "
            f"triples={current.kg.num_triples()})"
        )


class MaintainedKgAnswerCount:
    """``|Ans((P, X), ·)|`` kept current over a
    :class:`DynamicKnowledgeGraph`.

    Refreshes recompute through the engine under the version's
    ``target_id`` (KG answer counting thresholds per-assignment extension
    counts, so there is no linear delta to apply); provenance per digest
    makes rollback and repeated versions pure lookups.
    """

    kind = "kg-answer-count"

    def __init__(self, query, dkg: DynamicKnowledgeGraph, engine=None) -> None:
        if engine is None:
            from repro.engine import default_engine

            engine = default_engine()
        self.query = query
        self.dkg = dkg
        self.engine = engine
        self._values: dict[str, tuple[int, int]] = {}
        self.provenance: deque = deque(maxlen=PROVENANCE_LIMIT)
        with dkg.lock:
            version = dkg.snapshot()
            self._refresh(version)
            dkg.subscribe(self)

    def _refresh(self, version: KgVersion) -> int:
        cached = self._values.get(version.digest)
        if cached is not None:
            self._current = cached[1]
            return cached[1]
        value = count_kg_answers_engine(
            self.query,
            version.encoding,
            engine=self.engine,
            target_id=version.target_id,
        )
        self._values[version.digest] = (version.version, value)
        while len(self._values) > self.dkg.history_limit + 2:
            oldest = next(iter(self._values))
            del self._values[oldest]
        self.provenance.append(
            {
                "version": version.version,
                "digest": version.digest,
                "value": value,
            },
        )
        self._current = value
        return value

    def _on_apply(self, old: KgVersion, new: KgVersion) -> None:
        self._refresh(new)

    def _on_rollback(self, dropped: KgVersion, restored: KgVersion) -> None:
        self._refresh(restored)

    @property
    def version(self) -> int:
        return self.dkg.version

    @property
    def value(self) -> int:
        with self.dkg.lock:
            return self._refresh(self.dkg.snapshot())

    def close(self) -> None:
        self.dkg.unsubscribe(self)

    def summary(self) -> dict:
        return {
            "kind": self.kind,
            "version": self.version,
            "value": self.value,
        }
