"""Versioned target graphs with incremental index maintenance.

Every other layer of the library treats a target :class:`Graph` as a
frozen value: one ``add_edge`` invalidates its cached
:class:`~repro.graphs.indexed.IndexedGraph`, changes its cache
fingerprint, and forces the next count to re-encode and recompute from
scratch.  :class:`DynamicGraph` makes mutation a first-class, *versioned*
operation instead:

* updates arrive as batched :class:`UpdateBatch` objects;
  :meth:`DynamicGraph.apply` produces a **new immutable version** — a
  fresh ``Graph`` value plus its :class:`IndexedGraph` — while readers of
  older versions keep consistent snapshots;
* the new version's index is **patched** from the previous one (rows and
  neighbourhood bitsets of untouched vertices are shared, the label codec
  is extended in place) instead of recompiled via ``to_indexed()``;
  vertex removals change the index space and fall back to a full
  recompile — the patch/recompile split is reported in
  :class:`DynamicStats`;
* each version carries a **rolling content digest**, so
  :attr:`DynamicGraph.target_id` is a valid engine cache key *per
  version*: advancing the target never invalidates counts cached for
  earlier versions, and :meth:`rollback` makes the previous version's
  cache entries hot again instead of recomputing;
* an update **journal** records per-version provenance (digest, applied
  batch summary) and subscribed handles
  (:class:`~repro.dynamic.maintained.MaintainedCount`) are refreshed
  inside :meth:`apply`, so their values stay current across versions.
"""

from __future__ import annotations

import threading
from array import array
from collections import deque
from dataclasses import dataclass, field
from itertools import count
from typing import Iterable

from repro.errors import GraphError, UpdateError
from repro.graphs.graph import Graph, Vertex
from repro.graphs.indexed import IndexedGraph, LabelCodec
from repro.obs import DEFAULT_SIZE_BUCKETS, registry as _metrics_registry

DEFAULT_HISTORY_LIMIT = 8

_batch_hist = None


def _observe_batch_size(size: int) -> None:
    """Record one applied batch's operation count (lazy family lookup)."""
    global _batch_hist
    if _batch_hist is None:
        _batch_hist = _metrics_registry().histogram(
            "repro_dynamic_batch_ops",
            "Operations per applied dynamic-target update batch.",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
    _batch_hist.observe(size)

# Provenance (journal entries, handle provenance) is bounded so a
# long-running update stream cannot grow memory without limit.
DEFAULT_JOURNAL_LIMIT = 1024


@dataclass(frozen=True)
class UpdateBatch:
    """A batch of target mutations, applied as one atomic version step.

    Operations are applied in field order (vertex adds, edge adds, edge
    removals, vertex removals); within a batch the *net* effect against
    the previous version is what delta counting and the rolling digest
    see, so an edge added and removed in the same batch is a no-op.
    """

    add_vertices: tuple = ()
    add_edges: tuple = ()
    remove_edges: tuple = ()
    remove_vertices: tuple = ()

    @classmethod
    def build(
        cls,
        add_vertices: Iterable[Vertex] = (),
        add_edges: Iterable[Iterable[Vertex]] = (),
        remove_edges: Iterable[Iterable[Vertex]] = (),
        remove_vertices: Iterable[Vertex] = (),
    ) -> "UpdateBatch":
        return cls(
            add_vertices=tuple(add_vertices),
            add_edges=tuple((u, v) for u, v in add_edges),
            remove_edges=tuple((u, v) for u, v in remove_edges),
            remove_vertices=tuple(remove_vertices),
        )

    def is_empty(self) -> bool:
        return not (
            self.add_vertices
            or self.add_edges
            or self.remove_edges
            or self.remove_vertices
        )


@dataclass
class DynamicStats:
    """Counters for one update stream (shared with its maintained handles).

    ``index_patches``/``index_recompiles`` split how each new version's
    :class:`IndexedGraph` was built; ``deltas_applied``/
    ``delta_fallbacks`` split how subscribed counts were refreshed
    (incremental delta vs full recompute through the engine).
    """

    updates_applied: int = 0
    rollbacks: int = 0
    index_patches: int = 0
    index_recompiles: int = 0
    edges_added: int = 0
    edges_removed: int = 0
    vertices_added: int = 0
    vertices_removed: int = 0
    deltas_applied: int = 0
    delta_fallbacks: int = 0
    initial_computes: int = 0

    @property
    def patch_ratio(self) -> float:
        total = self.index_patches + self.index_recompiles
        return self.index_patches / total if total else 0.0

    @property
    def delta_ratio(self) -> float:
        total = self.deltas_applied + self.delta_fallbacks
        return self.deltas_applied / total if total else 0.0

    def snapshot(self) -> dict[str, int | float]:
        return {
            "updates_applied": self.updates_applied,
            "rollbacks": self.rollbacks,
            "index_patches": self.index_patches,
            "index_recompiles": self.index_recompiles,
            "patch_ratio": round(self.patch_ratio, 4),
            "edges_added": self.edges_added,
            "edges_removed": self.edges_removed,
            "vertices_added": self.vertices_added,
            "vertices_removed": self.vertices_removed,
            "deltas_applied": self.deltas_applied,
            "delta_fallbacks": self.delta_fallbacks,
            "delta_ratio": round(self.delta_ratio, 4),
            "initial_computes": self.initial_computes,
        }


@dataclass(frozen=True)
class GraphVersion:
    """One immutable version of a dynamic target.

    ``graph`` and ``indexed`` are never mutated after construction;
    in-flight readers (engine counts scheduled before a later ``apply``)
    stay consistent.  ``net_*`` fields describe the change *from the
    previous version* in label space.
    """

    version: int
    graph: Graph
    indexed: IndexedGraph
    digest: str
    # The engine cache key for this exact version's content.  Version 0
    # uses the ordinary label fingerprint, so counts against a freshly
    # registered dynamic target share cache entries with inline requests
    # for the same graph; later versions key on the rolling digest.
    target_id: tuple = ()
    net_added_edges: tuple = ()
    net_removed_edges: tuple = ()
    net_added_vertices: tuple = ()
    net_removed_vertices: tuple = ()
    patched: bool = True

    def applied_summary(self) -> dict[str, int]:
        return {
            "edges_added": len(self.net_added_edges),
            "edges_removed": len(self.net_removed_edges),
            "vertices_added": len(self.net_added_vertices),
            "vertices_removed": len(self.net_removed_vertices),
        }


@dataclass
class JournalEntry:
    """Light provenance record (the journal keeps the most recent
    ``DEFAULT_JOURNAL_LIMIT`` entries; version snapshots themselves are
    bounded by the much smaller ``history_limit``)."""

    version: int
    digest: str
    applied: dict[str, int] = field(default_factory=dict)
    patched: bool = True


class _VersionKeyInterner:
    """Process-global interning of version identities.

    A version's identity is its *exact* content history: the base graph's
    label-level fingerprint plus the chain of net update batches, with
    real label objects (frozensets of labels/edges) as the interning key
    — never a serialised form, so distinct labels can never collide the
    way ``repr``-derived digests could (the collision class PR 3
    eliminated).  Interned ids are short monotonically increasing tokens:
    equal histories (same process) always re-intern to the same id —
    rollback-then-reapply and parallel streams over the same base share
    cache entries — while the backing map is LRU-bounded; an evicted
    entry re-interns to a *fresh* id, which can only miss a cache hit,
    never alias two different versions.
    """

    def __init__(self, capacity: int = 65536) -> None:
        from repro.engine.cache import LRUCache

        self._keys = LRUCache(capacity)
        self._counter = count(1)
        self._lock = threading.Lock()

    def intern(self, parent, fingerprint) -> str:
        key = (parent, fingerprint)
        with self._lock:
            ident = self._keys.get(key)
            if ident is None:
                ident = f"v{next(self._counter)}"
                self._keys.put(key, ident)
            return ident


_INTERNER = _VersionKeyInterner()


def _base_digest(graph: Graph) -> str:
    """Identity of a version-0 graph (exact, label-level)."""
    return _INTERNER.intern("base", graph.edge_fingerprint())


def _batch_fingerprint(
    added_edges, removed_edges, added_vertices, removed_vertices,
) -> tuple:
    """The exact (hashable, label-level) identity of a net batch."""
    return (
        frozenset(frozenset(edge) for edge in added_edges),
        frozenset(frozenset(edge) for edge in removed_edges),
        frozenset(added_vertices),
        frozenset(removed_vertices),
    )


def _advance_digest(
    previous: str,
    added_edges,
    removed_edges,
    added_vertices,
    removed_vertices,
) -> str:
    """Next version identity: same parent + same net batch ⇒ same id."""
    return _INTERNER.intern(
        previous,
        _batch_fingerprint(
            added_edges, removed_edges, added_vertices, removed_vertices,
        ),
    )


def _extended_codec(old: LabelCodec, new_labels: Iterable[Vertex]) -> LabelCodec:
    """``old`` plus ``new_labels`` appended — built without re-hashing the
    existing labels (a plain dict copy reuses stored hashes)."""
    codec = LabelCodec.__new__(LabelCodec)
    labels = list(old.labels)
    index = dict(old._index)
    for label in new_labels:
        index[label] = len(labels)
        labels.append(label)
    codec.labels = tuple(labels)
    codec._index = index
    if len(index) != len(codec.labels):
        raise GraphError("extended codec labels must be distinct")
    return codec


def patch_indexed(
    old: IndexedGraph,
    graph: Graph,
    touched: set,
    added_labels: Iterable[Vertex],
) -> IndexedGraph:
    """Build ``graph``'s :class:`IndexedGraph` by patching ``old``.

    Preconditions (enforced by :meth:`DynamicGraph.apply`): ``graph``
    contains every vertex of ``old`` in the same insertion order, followed
    by ``added_labels``; only vertices in ``touched`` (plus the new ones)
    have different neighbourhoods.  Rows and bitsets of untouched vertices
    are shared with ``old`` — the expensive part of ``to_indexed()`` (per
    -vertex sorting, label hashing, big-int bitset construction) is paid
    only for the touched fringe.
    """
    codec = _extended_codec(old.codec, added_labels)
    index = codec._index
    n = len(codec)
    adjacency = graph.adjacency_view()
    old_rows = old.adjacency_lists()
    old_bits = old.bitsets()

    rows: list[tuple[int, ...]] = []
    bits: list[int] = []
    for i in range(old.n):
        label = codec.labels[i]
        if label in touched:
            row = tuple(sorted(index[u] for u in adjacency[label]))
            rows.append(row)
            mask = 0
            for w in row:
                mask |= 1 << w
            bits.append(mask)
        else:
            rows.append(old_rows[i])
            bits.append(old_bits[i])
    for i in range(old.n, n):
        row = tuple(sorted(index[u] for u in adjacency[codec.labels[i]]))
        rows.append(row)
        mask = 0
        for w in row:
            mask |= 1 << w
        bits.append(mask)

    offsets = array("q", bytes(8 * (n + 1)))
    targets = array("q")
    position = 0
    for i, row in enumerate(rows):
        targets.extend(row)
        position += len(row)
        offsets[i + 1] = position
    patched = IndexedGraph(n, offsets, targets, codec)
    patched._adjacency_lists = tuple(rows)
    patched._bitsets = tuple(bits)
    return patched


class DynamicGraph:
    """A versioned wrapper over :class:`Graph` with an update journal.

    >>> dyn = DynamicGraph(Graph(edges=[(0, 1), (1, 2)]))
    >>> record = dyn.apply(UpdateBatch.build(add_edges=[(0, 2)]))
    >>> (record.version, dyn.graph.num_edges())
    (1, 3)

    Thread-safe: :meth:`apply`/:meth:`rollback` serialise under one lock
    and version snapshots are immutable, so a reader holding a
    :class:`GraphVersion` never observes a half-applied batch.
    """

    def __init__(
        self,
        graph: Graph,
        history_limit: int = DEFAULT_HISTORY_LIMIT,
        stats: DynamicStats | None = None,
    ) -> None:
        if history_limit < 2:
            raise UpdateError("history_limit must keep at least two versions")
        base = graph.copy()
        base.to_indexed().bitsets()
        self.history_limit = history_limit
        self.stats = stats if stats is not None else DynamicStats()
        self._lock = threading.RLock()
        self._handles: list = []
        from repro.engine.cache import target_key

        root = GraphVersion(
            version=0,
            graph=base,
            indexed=base.to_indexed(),
            digest=_base_digest(base),
            target_id=target_key(base),
        )
        self._versions: list[GraphVersion] = [root]
        self.journal: deque[JournalEntry] = deque(
            [JournalEntry(version=0, digest=root.digest)],
            maxlen=DEFAULT_JOURNAL_LIMIT,
        )

    def journal_info(self) -> dict:
        """Journal occupancy for the health layer.

        ``saturated`` means the provenance ring is full and every new
        update now evicts the oldest entry — expected in steady state,
        but worth surfacing as a degraded signal for freshly started
        streams that fill unexpectedly fast.
        """
        entries = len(self.journal)
        limit = self.journal.maxlen
        return {
            "entries": entries,
            "limit": limit,
            "saturated": limit is not None and entries >= limit,
        }

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------
    @property
    def lock(self) -> threading.RLock:
        """The re-entrant lock serialising writes; handles hold it to
        read a version and its maintained values atomically."""
        return self._lock

    @property
    def version(self) -> int:
        return self._versions[-1].version

    @property
    def graph(self) -> Graph:
        return self._versions[-1].graph

    @property
    def indexed(self) -> IndexedGraph:
        return self._versions[-1].indexed

    @property
    def digest(self) -> str:
        return self._versions[-1].digest

    @property
    def target_id(self) -> tuple:
        return self._versions[-1].target_id

    def snapshot(self) -> GraphVersion:
        """The current version record (immutable, safe across updates)."""
        with self._lock:
            return self._versions[-1]

    def version_record(self, version: int) -> GraphVersion | None:
        """The retained record for ``version``, or ``None`` if trimmed."""
        with self._lock:
            for record in self._versions:
                if record.version == version:
                    return record
        return None

    def num_vertices(self) -> int:
        return self.graph.num_vertices()

    def num_edges(self) -> int:
        return self.graph.num_edges()

    # ------------------------------------------------------------------
    # subscriptions
    # ------------------------------------------------------------------
    def subscribe(self, handle) -> None:
        """Register a maintained handle; it is refreshed inside every
        :meth:`apply`/:meth:`rollback` (in subscription order)."""
        with self._lock:
            if handle not in self._handles:
                self._handles.append(handle)

    def unsubscribe(self, handle) -> None:
        with self._lock:
            if handle in self._handles:
                self._handles.remove(handle)

    @property
    def handles(self) -> tuple:
        with self._lock:
            return tuple(self._handles)

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------
    def apply(self, batch: UpdateBatch | None = None, **kwargs) -> GraphVersion:
        """Apply one batch, producing (and returning) the next version.

        Accepts either an :class:`UpdateBatch` or its keyword form
        (``add_edges=[(u, v), …]``, …).  Raises
        :class:`~repro.errors.GraphError` — with no version produced — if
        any operation is invalid (removing an absent edge, a self-loop).
        """
        if batch is None:
            batch = UpdateBatch.build(**kwargs)
        elif kwargs:
            raise TypeError("pass an UpdateBatch or keywords, not both")
        _observe_batch_size(
            len(batch.add_vertices) + len(batch.add_edges)
            + len(batch.remove_edges) + len(batch.remove_vertices),
        )
        with self._lock:
            old = self._versions[-1]
            new_graph = old.graph.copy()
            touched: set = set()
            for vertex in batch.add_vertices:
                new_graph.add_vertex(vertex)
            for u, v in batch.add_edges:
                new_graph.add_edge(u, v)
                touched.add(u)
                touched.add(v)
            for u, v in batch.remove_edges:
                new_graph.remove_edge(u, v)
                touched.add(u)
                touched.add(v)
            for vertex in batch.remove_vertices:
                touched.update(new_graph.neighbours(vertex))
                new_graph.remove_vertex(vertex)
                touched.discard(vertex)

            old_graph = old.graph
            # Computed from the graphs, not the batch: add_edge adds its
            # endpoints implicitly, and new labels must extend the codec in
            # the new graph's insertion order.
            net_added_vertices = tuple(
                v for v in new_graph if not old_graph.has_vertex(v)
            )
            net_removed_vertices = tuple(
                v for v in batch.remove_vertices if old_graph.has_vertex(v)
                and not new_graph.has_vertex(v)
            )
            seen: set = set()
            net_added_edges: list = []
            net_removed_edges: list = []
            for u, v in (*batch.add_edges, *batch.remove_edges):
                key = frozenset((u, v))
                if key in seen:
                    continue
                seen.add(key)
                before = old_graph.has_edge(u, v)
                after = new_graph.has_edge(u, v)
                if after and not before:
                    net_added_edges.append((u, v))
                elif before and not after:
                    net_removed_edges.append((u, v))
            # Removing a vertex removes its incident edges implicitly.
            for vertex in net_removed_vertices:
                for u in old_graph.neighbours(vertex):
                    key = frozenset((vertex, u))
                    if key not in seen:
                        seen.add(key)
                        net_removed_edges.append((vertex, u))

            if net_removed_vertices:
                # The index space shrinks and shifts: recompile.
                indexed = new_graph.to_indexed()
                indexed.bitsets()
                patched = False
                self.stats.index_recompiles += 1
            else:
                indexed = patch_indexed(
                    old.indexed, new_graph, touched, net_added_vertices,
                )
                new_graph.adopt_indexed(indexed)
                patched = True
                self.stats.index_patches += 1

            digest = _advance_digest(
                old.digest,
                net_added_edges,
                net_removed_edges,
                net_added_vertices,
                net_removed_vertices,
            )
            record = GraphVersion(
                version=old.version + 1,
                graph=new_graph,
                indexed=indexed,
                digest=digest,
                target_id=("dyn", digest),
                net_added_edges=tuple(net_added_edges),
                net_removed_edges=tuple(net_removed_edges),
                net_added_vertices=net_added_vertices,
                net_removed_vertices=net_removed_vertices,
                patched=patched,
            )
            self._versions.append(record)
            if len(self._versions) > self.history_limit:
                del self._versions[0]
            self.journal.append(
                JournalEntry(
                    version=record.version,
                    digest=record.digest,
                    applied=record.applied_summary(),
                    patched=patched,
                ),
            )
            self.stats.updates_applied += 1
            self.stats.edges_added += len(net_added_edges)
            self.stats.edges_removed += len(net_removed_edges)
            self.stats.vertices_added += len(net_added_vertices)
            self.stats.vertices_removed += len(net_removed_vertices)
            for handle in list(self._handles):
                handle._on_apply(old, record)
            return record

    def rollback(self) -> GraphVersion:
        """Revert to the previous retained version.

        Old-version cache entries (keyed by that version's
        :attr:`GraphVersion.target_id`) become hot again, and subscribed
        handles restore their values from provenance instead of
        recomputing.
        """
        with self._lock:
            if len(self._versions) < 2:
                raise UpdateError(
                    "no retained version to roll back to "
                    f"(history_limit={self.history_limit})",
                )
            dropped = self._versions.pop()
            restored = self._versions[-1]
            self.journal.append(
                JournalEntry(
                    version=restored.version,
                    digest=restored.digest,
                    applied={"rolled_back_from": dropped.version},
                    patched=True,
                ),
            )
            self.stats.rollbacks += 1
            for handle in list(self._handles):
                handle._on_rollback(dropped, restored)
            return restored

    def __repr__(self) -> str:
        current = self._versions[-1]
        return (
            f"DynamicGraph(version={current.version}, "
            f"n={current.graph.num_vertices()}, m={current.graph.num_edges()})"
        )
