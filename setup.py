"""Setuptools shim for environments without PEP 517 wheel support."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Reproduction of 'The Weisfeiler-Leman Dimension of Conjunctive "
        "Queries' (PODS 2024)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["repro = repro.cli:main"]},
)
